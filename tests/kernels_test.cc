// The SIMD kernel layer's contract suite: scalar and AVX2 kernels must be
// bit-identical on every input (including empty, size-1, and
// non-multiple-of-8 tails), tensors must hand kernels 64-byte-aligned
// storage, and the scratch arena must make steady-state serving free of
// tensor heap allocations. AVX2 halves of the parity tests skip themselves
// on hardware without avx2+fma (the contract is then vacuously true).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "autograd/variable.h"
#include "core/scratch_arena.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

using tensor::Tensor;
using tensor::kernels::KernelTable;
using util::SimdLevel;

// Sizes chosen to hit every tail case of the 8-lane blocking.
const std::vector<size_t> kOddSizes = {0,  1,  2,  3,  7,   8,   9,
                                       15, 16, 17, 31, 33,  64,  100,
                                       257};

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-3.0, 3.0));
  return v;
}

bool BitEqual(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

/// Restores the SIMD level a test flipped, even on assertion failure.
class SimdLevelRestorer {
 public:
  SimdLevelRestorer() : prev_(util::ActiveSimdLevel()) {}
  ~SimdLevelRestorer() { util::SetSimdLevel(prev_); }

 private:
  SimdLevel prev_;
};

bool Avx2Usable() { return tensor::kernels::Avx2KernelsAvailable(); }

// ---------------------------------------------------------------------------
// util::cpu — detection and SEQFM_SIMD resolution
// ---------------------------------------------------------------------------

TEST(CpuTest, ResolveSimdChoiceCoversTheMatrix) {
  bool warn = false;
  EXPECT_EQ(util::ResolveSimdChoice(nullptr, true, &warn), SimdLevel::kAvx2);
  EXPECT_FALSE(warn);
  EXPECT_EQ(util::ResolveSimdChoice(nullptr, false, &warn),
            SimdLevel::kScalar);
  EXPECT_FALSE(warn);
  EXPECT_EQ(util::ResolveSimdChoice("auto", true, &warn), SimdLevel::kAvx2);
  EXPECT_FALSE(warn);
  EXPECT_EQ(util::ResolveSimdChoice("scalar", true, &warn),
            SimdLevel::kScalar);
  EXPECT_FALSE(warn);
  EXPECT_EQ(util::ResolveSimdChoice("avx2", true, &warn), SimdLevel::kAvx2);
  EXPECT_FALSE(warn);
  // avx2 requested on hardware without it: honored downward, with warning.
  EXPECT_EQ(util::ResolveSimdChoice("avx2", false, &warn),
            SimdLevel::kScalar);
  EXPECT_TRUE(warn);
  // Typos behave like auto, with warning.
  EXPECT_EQ(util::ResolveSimdChoice("axv2", true, &warn), SimdLevel::kAvx2);
  EXPECT_TRUE(warn);
}

TEST(CpuTest, SimdLevelNames) {
  EXPECT_STREQ(util::SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(util::SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(CpuTest, SetSimdLevelRoundTrips) {
  SimdLevelRestorer restore;
  const SimdLevel prev = util::SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(util::ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(tensor::kernels::Active().name, "scalar");
  util::SetSimdLevel(prev);
  EXPECT_EQ(util::ActiveSimdLevel(), prev);
}

TEST(CpuTest, TableFallsBackToScalarWhenAvx2Unavailable) {
  if (Avx2Usable()) {
    EXPECT_STREQ(tensor::kernels::Table(SimdLevel::kAvx2).name, "avx2");
  } else {
    EXPECT_STREQ(tensor::kernels::Table(SimdLevel::kAvx2).name, "scalar");
  }
  EXPECT_STREQ(tensor::kernels::Table(SimdLevel::kScalar).name, "scalar");
}

// ---------------------------------------------------------------------------
// Kernel-by-kernel scalar/AVX2 bit-parity at odd sizes
// ---------------------------------------------------------------------------

class KernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Usable()) {
      GTEST_SKIP() << "no AVX2 kernels on this machine";
    }
    scalar_ = &tensor::kernels::Table(SimdLevel::kScalar);
    avx2_ = &tensor::kernels::Table(SimdLevel::kAvx2);
  }

  const KernelTable* scalar_ = nullptr;
  const KernelTable* avx2_ = nullptr;
};

TEST_F(KernelParityTest, Reductions) {
  for (size_t n : kOddSizes) {
    const auto a = RandomVec(n, 1000 + n);
    const auto b = RandomVec(n, 2000 + n);
    EXPECT_TRUE(BitEqual(scalar_->dot(a.data(), b.data(), n),
                         avx2_->dot(a.data(), b.data(), n)))
        << "dot n=" << n;
    EXPECT_TRUE(BitEqual(scalar_->reduce_sum(a.data(), n),
                         avx2_->reduce_sum(a.data(), n)))
        << "reduce_sum n=" << n;
    EXPECT_TRUE(BitEqual(scalar_->reduce_sum_sq_diff(a.data(), 0.25f, n),
                         avx2_->reduce_sum_sq_diff(a.data(), 0.25f, n)))
        << "reduce_sum_sq_diff n=" << n;
    EXPECT_TRUE(BitEqual(scalar_->reduce_max_add(a.data(), nullptr, n),
                         avx2_->reduce_max_add(a.data(), nullptr, n)))
        << "reduce_max n=" << n;
    EXPECT_TRUE(BitEqual(scalar_->reduce_max_add(a.data(), b.data(), n),
                         avx2_->reduce_max_add(a.data(), b.data(), n)))
        << "reduce_max_add n=" << n;
  }
}

TEST_F(KernelParityTest, ElementwiseMaps) {
  for (size_t n : kOddSizes) {
    const auto a = RandomVec(n, 3000 + n);
    const auto b = RandomVec(n, 4000 + n);
    auto ys = RandomVec(n, 5000 + n);
    auto yv = ys;  // identical starting contents for the accumulating ops
    auto check = [&](const char* what) {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(BitEqual(ys[i], yv[i]))
            << what << " n=" << n << " i=" << i;
      }
    };
    scalar_->add(a.data(), b.data(), ys.data(), n);
    avx2_->add(a.data(), b.data(), yv.data(), n);
    check("add");
    scalar_->sub(a.data(), b.data(), ys.data(), n);
    avx2_->sub(a.data(), b.data(), yv.data(), n);
    check("sub");
    scalar_->mul(a.data(), b.data(), ys.data(), n);
    avx2_->mul(a.data(), b.data(), yv.data(), n);
    check("mul");
    scalar_->madd(a.data(), b.data(), ys.data(), n);
    avx2_->madd(a.data(), b.data(), yv.data(), n);
    check("madd");
    scalar_->axpy(0.37f, a.data(), ys.data(), n);
    avx2_->axpy(0.37f, a.data(), yv.data(), n);
    check("axpy");
    scalar_->scale(-1.7f, a.data(), ys.data(), n);
    avx2_->scale(-1.7f, a.data(), yv.data(), n);
    check("scale");
    scalar_->scale_inplace(0.81f, ys.data(), n);
    avx2_->scale_inplace(0.81f, yv.data(), n);
    check("scale_inplace");
    scalar_->relu(a.data(), ys.data(), n);
    avx2_->relu(a.data(), yv.data(), n);
    check("relu");
    scalar_->exp_map(a.data(), ys.data(), n);
    avx2_->exp_map(a.data(), yv.data(), n);
    check("exp_map");
    scalar_->sigmoid(a.data(), ys.data(), n);
    avx2_->sigmoid(a.data(), yv.data(), n);
    check("sigmoid");
    scalar_->tanh(a.data(), ys.data(), n);
    avx2_->tanh(a.data(), yv.data(), n);
    check("tanh");
  }
}

TEST_F(KernelParityTest, FusedRowsAndSpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (size_t n : kOddSizes) {
    auto x = RandomVec(n, 6000 + n);
    auto m = RandomVec(n, 7000 + n);
    if (n >= 3) {
      m[0] = -inf;  // masked entry
      x[n / 2] = nan;
      x[n - 1] = -200.0f;  // deep underflow
    }
    const float max_s = scalar_->reduce_max_add(x.data(), m.data(), n);
    const float max_v = avx2_->reduce_max_add(x.data(), m.data(), n);
    ASSERT_TRUE(BitEqual(max_s, max_v)) << "max n=" << n;
    std::vector<float> ys(n), yv(n);
    const float ts =
        scalar_->softmax_exp_sum(x.data(), m.data(), max_s, ys.data(), n);
    const float tv =
        avx2_->softmax_exp_sum(x.data(), m.data(), max_v, yv.data(), n);
    EXPECT_TRUE(BitEqual(ts, tv)) << "softmax total n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEqual(ys[i], yv[i])) << "softmax n=" << n << " i=" << i;
    }
    if (n >= 3) {
      EXPECT_EQ(ys[0], 0.0f);      // -inf mask -> exact zero
      EXPECT_EQ(ys[n / 2], 0.0f);  // NaN input -> exact zero
    }

    const auto gamma = RandomVec(n, 8000 + n);
    const auto beta = RandomVec(n, 9000 + n);
    std::vector<float> hs(n), hv(n), xs(n), xv2(n);
    const auto clean = RandomVec(n, 10000 + n);
    scalar_->layer_norm_row(clean.data(), gamma.data(), beta.data(), 0.1f,
                            1.3f, n, hs.data(), xs.data());
    avx2_->layer_norm_row(clean.data(), gamma.data(), beta.data(), 0.1f, 1.3f,
                          n, hv.data(), xv2.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEqual(hs[i], hv[i])) << "layer_norm y i=" << i;
      ASSERT_TRUE(BitEqual(xs[i], xv2[i])) << "layer_norm xhat i=" << i;
    }
  }
}

TEST_F(KernelParityTest, ExpAccuracyAgainstLibm) {
  // The shared polynomial replaces libm exp on the dispatched paths; it must
  // stay within a few ulp across the useful range (gradcheck depends on it).
  const auto& kt = *scalar_;
  for (float x = -80.0f; x <= 80.0f; x += 0.37f) {
    float y;
    kt.exp_map(&x, &y, 1);
    const double want = std::exp(static_cast<double>(x));
    EXPECT_NEAR(y / want, 1.0, 3e-7) << "x=" << x;
  }
  float zero = 0.0f, one;
  kt.exp_map(&zero, &one, 1);
  EXPECT_EQ(one, 1.0f);
  float s;
  kt.sigmoid(&zero, &s, 1);
  EXPECT_EQ(s, 0.5f);
}

TEST_F(KernelParityTest, TanhAccuracyAndSpecialValues) {
  // The dispatched tanh replaces libm on the serving paths (compiled and
  // eager run the same kernel). Accuracy first: |tanh| <= 1, so a few-ulp
  // absolute bound over the useful range is the right contract.
  const auto& kt = *scalar_;
  for (float x = -12.0f; x <= 12.0f; x += 0.173f) {
    float y;
    kt.tanh(&x, &y, 1);
    EXPECT_NEAR(y, std::tanh(static_cast<double>(x)), 2e-6) << "x=" << x;
  }

  // Exactness at the pinned points, on BOTH levels: tanh(0) == +0, large
  // |x| saturates to exactly +-1 (ExpApprox underflows to 0), the sign
  // restore is a bit flip (odd symmetry is bit-exact), and NaN maps to -1
  // (the twin of sigmoid's NaN-to-0 convention).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const KernelTable* kt_level : {scalar_, avx2_}) {
    const float xs[] = {0.0f, 50.0f, -50.0f, 0.7f, -0.7f, nan};
    float ys[6];
    kt_level->tanh(xs, ys, 6);
    EXPECT_TRUE(BitEqual(ys[0], 0.0f));
    EXPECT_EQ(ys[1], 1.0f);
    EXPECT_EQ(ys[2], -1.0f);
    EXPECT_TRUE(BitEqual(ys[4], -ys[3])) << "odd symmetry";
    EXPECT_EQ(ys[5], -1.0f) << "NaN convention";
  }
}

// ---------------------------------------------------------------------------
// GEMM parity: whole-op, both levels, against the generalized oracle
// ---------------------------------------------------------------------------

TEST(GemmSimdTest, BitIdenticalAcrossLevelsAndAgainstReference) {
  if (!Avx2Usable()) GTEST_SKIP() << "no AVX2 kernels on this machine";
  SimdLevelRestorer restore;
  const std::vector<size_t> dims = {1, 3, 8, 17, 33};
  for (size_t m : dims) {
    for (size_t k : dims) {
      for (size_t n : dims) {
        for (bool trans_a : {false, true}) {
          for (bool trans_b : {false, true}) {
            for (bool accumulate : {false, true}) {
              const auto a = RandomVec(m * k, m * 131 + k);
              const auto b = RandomVec(k * n, k * 137 + n);
              const auto c0 = RandomVec(m * n, m * 139 + n);
              auto cs = c0;
              auto cv = c0;
              auto cr = c0;
              util::SetSimdLevel(SimdLevel::kScalar);
              tensor::Gemm(a.data(), b.data(), cs.data(), m, k, n, trans_a,
                           trans_b, accumulate);
              util::SetSimdLevel(SimdLevel::kAvx2);
              tensor::Gemm(a.data(), b.data(), cv.data(), m, k, n, trans_a,
                           trans_b, accumulate);
              tensor::GemmReference(a.data(), b.data(), cr.data(), m, k, n,
                                    trans_a, trans_b, accumulate);
              for (size_t i = 0; i < m * n; ++i) {
                ASSERT_TRUE(BitEqual(cs[i], cv[i]) && BitEqual(cs[i], cr[i]))
                    << "m=" << m << " k=" << k << " n=" << n
                    << " ta=" << trans_a << " tb=" << trans_b
                    << " acc=" << accumulate << " i=" << i;
              }
            }
          }
        }
      }
    }
  }
}

TEST(GemmSimdTest, Avx2ThreadCountInvariance) {
  if (!Avx2Usable()) GTEST_SKIP() << "no AVX2 kernels on this machine";
  SimdLevelRestorer restore;
  util::SetSimdLevel(SimdLevel::kAvx2);
  const size_t m = 97, k = 61, n = 45;  // big enough to cross the pool cutoff
  const auto a = RandomVec(m * k, 11);
  const auto b = RandomVec(k * n, 13);
  std::vector<float> c1(m * n), c4(m * n);
  util::SetGlobalThreads(1);
  tensor::Gemm(a.data(), b.data(), c1.data(), m, k, n, false, true, false);
  util::SetGlobalThreads(4);
  tensor::Gemm(a.data(), b.data(), c4.data(), m, k, n, false, true, false);
  util::SetGlobalThreads(1);
  for (size_t i = 0; i < m * n; ++i) {
    ASSERT_TRUE(BitEqual(c1[i], c4[i])) << "i=" << i;
  }
}

TEST(GemmSimdTest, SoftmaxOpParityIncludingMasks) {
  if (!Avx2Usable()) GTEST_SKIP() << "no AVX2 kernels on this machine";
  SimdLevelRestorer restore;
  Rng rng(99);
  Tensor x({4, 5, 7});
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(-4.0, 4.0));
  }
  Tensor mask({5, 7});
  const float inf = std::numeric_limits<float>::infinity();
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      mask.at(i, j) = (j > i + 2) ? -inf : 0.0f;
    }
  }
  mask.at(4, 0) = -inf;  // plus one fully-masked-ish row pattern
  Tensor ys({4, 5, 7}), yv({4, 5, 7});
  util::SetSimdLevel(SimdLevel::kScalar);
  tensor::SoftmaxLastDim(x, &mask, &ys);
  util::SetSimdLevel(SimdLevel::kAvx2);
  tensor::SoftmaxLastDim(x, &mask, &yv);
  for (size_t i = 0; i < ys.size(); ++i) {
    ASSERT_TRUE(BitEqual(ys.data()[i], yv.data()[i])) << "i=" << i;
  }
  // Masked entries are exact zeros and open rows still normalize.
  EXPECT_EQ(yv.at(0, 0, 5), 0.0f);
  float total = 0.0f;
  for (size_t j = 0; j < 7; ++j) total += yv.at(0, 0, j);
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Aligned tensor storage
// ---------------------------------------------------------------------------

TEST(TensorStorageTest, OwnedBuffersAre64ByteAligned) {
  auto aligned = [](const float* p) {
    return reinterpret_cast<uintptr_t>(p) %
               tensor::internal::kTensorAlignment ==
           0;
  };
  EXPECT_TRUE(aligned(Tensor({5}).data()));
  EXPECT_TRUE(aligned(Tensor({3, 7}).data()));
  EXPECT_TRUE(aligned(Tensor::Uninitialized({2, 3, 5}).data()));
  EXPECT_TRUE(aligned(Tensor::Full({17}, 2.0f).data()));
  EXPECT_TRUE(aligned(
      Tensor::FromVector({4}, {1.0f, 2.0f, 3.0f, 4.0f}).ValueOrDie().data()));
  // Copies of wrapped storage own aligned heap memory again.
  alignas(64) float external[8] = {0};
  Tensor wrapped = Tensor::WrapExternal({8}, external, 8);
  EXPECT_FALSE(wrapped.owns_storage());
  EXPECT_EQ(wrapped.data(), external);
  Tensor copy = wrapped;
  EXPECT_TRUE(copy.owns_storage());
  EXPECT_TRUE(aligned(copy.data()));
  EXPECT_NE(copy.data(), external);
}

TEST(TensorStorageTest, HeapAllocCountTracksDataAllocations) {
  const uint64_t before = tensor::internal::HeapAllocCount();
  Tensor t({64});
  EXPECT_EQ(tensor::internal::HeapAllocCount(), before + 1);
  Tensor copy = t;  // copies allocate
  EXPECT_EQ(tensor::internal::HeapAllocCount(), before + 2);
  Tensor moved = std::move(copy);  // moves do not
  EXPECT_EQ(tensor::internal::HeapAllocCount(), before + 2);
  alignas(64) float external[4];
  Tensor wrapped = Tensor::WrapExternal({4}, external, 4);  // wraps do not
  EXPECT_EQ(tensor::internal::HeapAllocCount(), before + 2);
}

// ---------------------------------------------------------------------------
// Scratch arena
// ---------------------------------------------------------------------------

TEST(ScratchArenaTest, BumpsAlignedAndReusesCapacityAfterRewind) {
  core::ScratchArena arena;
  const auto mark = arena.mark();
  const uint64_t refills_before = core::GlobalScratchStats().heap_refills;
  float* a = arena.AllocateFloats(100);
  float* b = arena.AllocateFloats(3);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % core::ScratchArena::kAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % core::ScratchArena::kAlignment,
            0u);
  EXPECT_GE(arena.bytes_in_use(), 103 * sizeof(float));
  EXPECT_EQ(core::GlobalScratchStats().heap_refills, refills_before + 1);

  arena.RewindTo(mark);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  // Same shapes again: served from the retained block, no refill.
  float* a2 = arena.AllocateFloats(100);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(core::GlobalScratchStats().heap_refills, refills_before + 1);
}

TEST(ScratchArenaTest, OversizeRequestGetsOwnBlockAndMarksNest) {
  core::ScratchArena arena;
  const auto outer = arena.mark();
  (void)arena.AllocateFloats(10);
  const auto inner = arena.mark();
  const size_t in_use_at_inner = arena.bytes_in_use();
  // Far beyond the initial block: must refill, not crash.
  (void)arena.AllocateFloats((1 << 20) + 123);
  (void)arena.AllocateFloats(50);
  arena.RewindTo(inner);
  EXPECT_EQ(arena.bytes_in_use(), in_use_at_inner);
  (void)arena.AllocateFloats(7);
  arena.RewindTo(outer);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ScratchArenaTest, OutputBufferDrawsFromArenaOnlyInScopedNoGradMode) {
  // Taped mode: heap, zero-filled.
  {
    Tensor t = autograd::internal::OutputBuffer({2, 3});
    EXPECT_TRUE(t.owns_storage());
    for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
  }
  // No-grad without a scope: heap (uninitialized).
  {
    autograd::NoGradGuard no_grad;
    Tensor t = autograd::internal::OutputBuffer({2, 3});
    EXPECT_TRUE(t.owns_storage());
  }
  // No-grad inside a scope: arena.
  {
    autograd::NoGradGuard no_grad;
    core::ScratchScope scratch;
    const uint64_t allocs_before = core::GlobalScratchStats().allocations;
    Tensor t = autograd::internal::OutputBuffer({2, 3});
    EXPECT_FALSE(t.owns_storage());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) %
                  core::ScratchArena::kAlignment,
              0u);
    EXPECT_GT(core::GlobalScratchStats().allocations, allocs_before);
  }
  // A grad-mode op inside a scope still tapes onto the heap.
  {
    core::ScratchScope scratch;
    Tensor t = autograd::internal::OutputBuffer({4});
    EXPECT_TRUE(t.owns_storage());
  }
}

// ---------------------------------------------------------------------------
// End-to-end: serving parity across levels, allocation-free steady state,
// and loss-curve invariance across SEQFM_SIMD values
// ---------------------------------------------------------------------------

struct ServeFixture {
  ServeFixture()
      : log(data::SyntheticDatasetGenerator(
                data::SyntheticDatasetGenerator::Preset("gowalla", 0.15)
                    .ValueOrDie())
                .Generate()
                .ValueOrDie()),
        dataset(data::TemporalDataset::FromLog(log).ValueOrDie()),
        space(log.num_users(), log.num_objects()),
        builder(space, /*max_seq_len=*/8) {}

  core::SeqFmConfig ModelConfig() const {
    core::SeqFmConfig cfg;
    cfg.embedding_dim = 8;
    cfg.max_seq_len = 8;
    cfg.keep_prob = 1.0f;
    return cfg;
  }

  data::InteractionLog log;
  data::TemporalDataset dataset;
  data::FeatureSpace space;
  data::BatchBuilder builder;
};

TEST(SimdServingTest, ScoresBitIdenticalAcrossLevels) {
  if (!Avx2Usable()) GTEST_SKIP() << "no AVX2 kernels on this machine";
  SimdLevelRestorer restore;
  ServeFixture fx;
  core::SeqFm model(fx.space, fx.ModelConfig());
  serve::Predictor predictor(&model, &fx.builder);
  ASSERT_TRUE(predictor.fast_path_active());
  const auto& ex = fx.dataset.train().front();
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < 40; ++i) candidates.push_back(i % 20);

  util::SetSimdLevel(SimdLevel::kScalar);
  const auto scalar_scores = predictor.ScoreCandidates(ex, candidates);
  util::SetSimdLevel(SimdLevel::kAvx2);
  const auto avx2_scores = predictor.ScoreCandidates(ex, candidates);
  ASSERT_EQ(scalar_scores.size(), avx2_scores.size());
  for (size_t i = 0; i < scalar_scores.size(); ++i) {
    ASSERT_TRUE(BitEqual(scalar_scores[i], avx2_scores[i])) << "i=" << i;
  }
}

TEST(SimdServingTest, SteadyStateServingPerformsZeroTensorHeapAllocations) {
  // The allocation-free-serving acceptance gate, for BOTH serving engines:
  // once the context cache is warm, a Predictor request must not touch the
  // heap for tensor data at all. The compiled op program executes inside
  // preallocated thread-local frames (it does not even need the scratch
  // arena); the hand-factored eager path draws every op output from the
  // thread's warm arena instead.
  ServeFixture fx;
  core::SeqFm model(fx.space, fx.ModelConfig());
  // Single-threaded so every chunk runs on this (warmed) thread's arena.
  util::SetGlobalThreads(1);
  const auto& ex = fx.dataset.train().front();
  std::vector<int32_t> candidates;
  for (int32_t i = 0; i < 40; ++i) candidates.push_back(i % 20);

  for (const bool compiled : {true, false}) {
    serve::PredictorOptions opts;
    opts.micro_batch = 16;
    opts.context_cache_bytes = 1 << 20;
    opts.use_compiled_program = compiled;
    serve::Predictor predictor(&model, &fx.builder, opts);
    ASSERT_TRUE(predictor.fast_path_active());
    ASSERT_EQ(predictor.compiled_active(), compiled);
    ASSERT_NE(predictor.context_cache(), nullptr);

    for (int warm = 0; warm < 3; ++warm) {
      (void)predictor.TopK(ex, candidates, 5);
    }
    const uint64_t tensor_allocs = tensor::internal::HeapAllocCount();
    const auto scratch_before = predictor.scratch_stats();
    std::vector<serve::ScoredItem> last;
    for (int r = 0; r < 10; ++r) {
      last = predictor.TopK(ex, candidates, 5);
    }
    const auto scratch_after = predictor.scratch_stats();
    EXPECT_EQ(tensor::internal::HeapAllocCount(), tensor_allocs)
        << "steady-state requests allocated tensor heap memory (compiled="
        << compiled << ")";
    EXPECT_EQ(scratch_after.heap_refills, scratch_before.heap_refills)
        << "steady-state requests grew the scratch arena (compiled="
        << compiled << ")";
    if (!compiled) {
      EXPECT_GT(scratch_after.allocations, scratch_before.allocations)
          << "eager requests should bump the arena";
      EXPECT_GT(scratch_after.high_water, 0u);
    }
    ASSERT_EQ(last.size(), 5u);
  }
}

TEST(SimdServingTest, BatchServerReportsScratchStats) {
  ServeFixture fx;
  core::SeqFm model(fx.space, fx.ModelConfig());
  serve::Predictor predictor(&model, &fx.builder);
  serve::BatchServer server(&predictor);
  std::vector<int32_t> candidates = {0, 1, 2, 3, 4, 5, 6, 7};
  auto fut = server.Submit(fx.dataset.train().front(), candidates, 3);
  ASSERT_EQ(fut.get().size(), 3u);
  const auto stats = server.stats();
  EXPECT_GT(stats.scratch.allocations, 0u);
  EXPECT_GT(stats.scratch.bytes_reserved, 0u);
  EXPECT_GT(stats.scratch.high_water, 0u);
}

TEST(SimdTrainingTest, LossCurveIdenticalAcrossSimdLevels) {
  // The end-to-end statement of the kernel contract: an entire training run
  // — forward, backward, optimizer — produces the same loss curve bit for
  // bit whether SEQFM_SIMD picked scalar or avx2.
  if (!Avx2Usable()) GTEST_SKIP() << "no AVX2 kernels on this machine";
  SimdLevelRestorer restore;
  ServeFixture fx;
  auto run = [&fx](SimdLevel level) {
    util::SetSimdLevel(level);
    core::SeqFm model(fx.space, fx.ModelConfig());
    core::TrainConfig cfg;
    cfg.task = core::Task::kRanking;
    cfg.epochs = 2;
    cfg.batch_size = 64;
    cfg.learning_rate = 5e-3f;
    cfg.num_negatives = 1;
    core::Trainer trainer(&model, &fx.builder, &fx.dataset, cfg);
    auto result = trainer.Train();
    std::vector<double> curve;
    for (const auto& epoch : result.epochs) curve.push_back(epoch.mean_loss);
    return curve;
  };
  const auto scalar_curve = run(SimdLevel::kScalar);
  const auto avx2_curve = run(SimdLevel::kAvx2);
  ASSERT_EQ(scalar_curve.size(), avx2_curve.size());
  for (size_t i = 0; i < scalar_curve.size(); ++i) {
    EXPECT_EQ(scalar_curve[i], avx2_curve[i]) << "epoch " << i;
  }
}

}  // namespace
}  // namespace seqfm
