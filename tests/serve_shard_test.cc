// Lockdown suite for sharded catalog serving (src/serve/shard.{h,cc}) and
// the serving-determinism total order it introduced:
//   - RankBefore: score desc, NaN last, ties by candidate id then position;
//   - SelectTopK regression: duplicate scores order by candidate id, not by
//     position in the candidates vector (the bug that would have made
//     sharded and unsharded rankings disagree);
//   - ShardedCatalog partition math: uneven boundaries, shards > catalog;
//   - TopKHeap bounded retention and MergeTopK cross-shard merging;
//   - ShardedPredictor parity: bit-identical to Predictor::TopKAll for
//     shard counts {1, 2, 3, 8}, on catalogs with forced duplicate scores,
//     for k <=, ==, and > catalog, fast and generic paths, 1 and 2 threads;
//   - BatchServer with num_shards > 1: wave results equal Predictor::TopK.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <vector>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

core::SeqFmConfig SmallSeqFmConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};           // single-item history
  examples[2] = {3, 0, 2.0f, {}};            // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

/// Makes items \p a and \p b score bit-identically for every request by
/// copying a's static-embedding row and w_static row onto b's. The model's
/// only candidate-dependent inputs are those two rows, so the forced tie
/// survives every serving path — the duplicate-score workload the
/// deterministic tie-break exists for.
void ForceScoreTie(core::SeqFm* model, const data::FeatureSpace& space,
                   int32_t a, int32_t b) {
  const auto view = model->serving_view();
  const size_t dim = model->config().embedding_dim;
  autograd::Variable table = view.static_embedding->table();  // shares node
  float* rows = table.mutable_value().data();
  const size_t ra = static_cast<size_t>(space.CandidateIndex(a));
  const size_t rb = static_cast<size_t>(space.CandidateIndex(b));
  std::memcpy(rows + rb * dim, rows + ra * dim, dim * sizeof(float));
  autograd::Variable w_static = view.w_static;
  w_static.mutable_value().data()[rb] = w_static.value().data()[ra];
}

void ExpectSameRanking(const std::vector<serve::ScoredItem>& got,
                       const std::vector<serve::ScoredItem>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << context << " rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << context << " rank " << i;
  }
}

// ---------------------------------------------------------------------------
// RankBefore: the serving-wide total order
// ---------------------------------------------------------------------------

TEST(RankBeforeTest, OrdersByScoreThenIdThenPosition) {
  // Higher score first.
  EXPECT_TRUE(serve::RankBefore({2.0f, 9, 5}, {1.0f, 0, 0}));
  EXPECT_FALSE(serve::RankBefore({1.0f, 0, 0}, {2.0f, 9, 5}));
  // Score tie: lower candidate id first, regardless of position.
  EXPECT_TRUE(serve::RankBefore({1.0f, 3, 7}, {1.0f, 8, 0}));
  EXPECT_FALSE(serve::RankBefore({1.0f, 8, 0}, {1.0f, 3, 7}));
  // Score and id tie (duplicate candidate): earlier position first.
  EXPECT_TRUE(serve::RankBefore({1.0f, 3, 1}, {1.0f, 3, 4}));
  EXPECT_FALSE(serve::RankBefore({1.0f, 3, 4}, {1.0f, 3, 1}));
  // Identical entries are equivalent, not before each other.
  EXPECT_FALSE(serve::RankBefore({1.0f, 3, 4}, {1.0f, 3, 4}));
}

TEST(RankBeforeTest, NanScoresSortLastAmongThemselvesById) {
  const float nan = std::nanf("");
  EXPECT_TRUE(serve::RankBefore({-100.0f, 9, 9}, {nan, 0, 0}));
  EXPECT_FALSE(serve::RankBefore({nan, 0, 0}, {-100.0f, 9, 9}));
  // Two NaNs: id tie-break keeps the order strict and deterministic.
  EXPECT_TRUE(serve::RankBefore({nan, 1, 5}, {nan, 2, 0}));
  EXPECT_FALSE(serve::RankBefore({nan, 2, 0}, {nan, 1, 5}));
}

// ---------------------------------------------------------------------------
// SelectTopK tie-break regression (the sharding determinism bugfix)
// ---------------------------------------------------------------------------

TEST(SelectTopKTest, DuplicateScoresOrderByCandidateIdNotPosition) {
  // All scores equal; the old position tie-break would return {7, 3, 5, 1}.
  const std::vector<int32_t> candidates = {7, 3, 5, 1};
  const std::vector<float> scores(4, 0.25f);
  const auto top = serve::SelectTopK(candidates, scores, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
  EXPECT_EQ(top[2].item, 5);
  EXPECT_EQ(top[3].item, 7);
}

TEST(SelectTopKTest, PartialTiesBreakByIdWithinEqualScores) {
  const std::vector<int32_t> candidates = {4, 2, 8, 6};
  const std::vector<float> scores = {1.0f, 2.0f, 1.0f, 2.0f};
  const auto top = serve::SelectTopK(candidates, scores, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].item, 2);  // 2.0 tie: id 2 before id 6
  EXPECT_EQ(top[1].item, 6);
  EXPECT_EQ(top[2].item, 4);  // 1.0 tie: id 4 before id 8
  EXPECT_EQ(top[3].item, 8);
}

TEST(SelectTopKTest, NanStillSortsLastAndDuplicateIdsKeepSlots) {
  const std::vector<int32_t> candidates = {10, 11, 10};
  const std::vector<float> scores = {std::nanf(""), 2.0f, 2.0f};
  const auto top = serve::SelectTopK(candidates, scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 10);  // 2.0 tie: id 10 before id 11
  EXPECT_EQ(top[1].item, 11);
  EXPECT_EQ(top[2].item, 10);  // NaN last, slot preserved
  EXPECT_TRUE(std::isnan(top[2].score));
}

// ---------------------------------------------------------------------------
// ShardedCatalog partition math
// ---------------------------------------------------------------------------

TEST(ShardedCatalogTest, BoundsCoverContiguouslyWithNearEqualShards) {
  for (size_t total : {0u, 1u, 7u, 9u, 64u}) {
    for (size_t shards : {1u, 2u, 3u, 5u, 8u}) {
      const auto bounds = serve::ShardedCatalog::Bounds(total, shards);
      ASSERT_EQ(bounds.size(), shards + 1);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), total);
      size_t min_size = total, max_size = 0;
      for (size_t s = 0; s < shards; ++s) {
        ASSERT_LE(bounds[s], bounds[s + 1]);  // contiguous, monotone
        const size_t size = bounds[s + 1] - bounds[s];
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
      }
      EXPECT_LE(max_size - min_size, 1u)
          << total << " over " << shards << " shards";
    }
  }
}

TEST(ShardedCatalogTest, MoreShardsThanCandidatesLeavesEmptyShards) {
  serve::ShardedCatalog catalog({3, 1, 4}, 8);
  EXPECT_EQ(catalog.num_shards(), 8u);
  EXPECT_EQ(catalog.size(), 3u);
  size_t covered = 0, empty = 0;
  for (size_t s = 0; s < catalog.num_shards(); ++s) {
    covered += catalog.shard_size(s);
    empty += (catalog.shard_size(s) == 0);
  }
  EXPECT_EQ(covered, 3u);
  EXPECT_EQ(empty, 5u);
}

TEST(ShardedCatalogDeathTest, ZeroShardsDies) {
  EXPECT_DEATH(serve::ShardedCatalog({1, 2}, 0), "at least one shard");
}

// ---------------------------------------------------------------------------
// TopKHeap and MergeTopK
// ---------------------------------------------------------------------------

TEST(TopKHeapTest, RetainsBestKIndependentOfPushOrder) {
  const std::vector<serve::RankEntry> entries = {
      {1.0f, 4, 0}, {5.0f, 1, 1}, {3.0f, 2, 2}, {5.0f, 0, 3}, {2.0f, 3, 4}};
  // Push in two different orders; retained sets and output order must match.
  serve::TopKHeap forward(3), backward(3);
  for (const auto& e : entries) forward.Push(e);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    backward.Push(*it);
  }
  const auto a = forward.SortedEntries();
  const auto b = backward.SortedEntries();
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].pos, b[i].pos);
  }
  // 5.0 tie: id 0 before id 1; then 3.0.
  EXPECT_EQ(a[0].item, 0);
  EXPECT_EQ(a[1].item, 1);
  EXPECT_EQ(a[2].item, 2);
}

TEST(TopKHeapTest, ZeroCapacityRetainsNothing) {
  serve::TopKHeap heap(0);
  heap.Push({1.0f, 0, 0});
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(heap.SortedEntries().empty());
}

TEST(MergeTopKTest, MergesDuplicateScoresAcrossShardsById) {
  // Shard 0 holds ids {5, 1}, shard 1 holds {3, 7}, all score 1.0 except a
  // 2.0 leader in shard 1. Global order: 7(2.0), then 1, 3, 5 by id.
  serve::TopKHeap s0(4), s1(4);
  s0.Push({1.0f, 5, 0});
  s0.Push({1.0f, 1, 1});
  s1.Push({1.0f, 3, 2});
  s1.Push({2.0f, 7, 3});
  const auto merged = serve::MergeTopK({s0, s1}, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].item, 7);
  EXPECT_EQ(merged[1].item, 1);
  EXPECT_EQ(merged[2].item, 3);
}

TEST(MergeTopKTest, KLargerThanRetainedReturnsEverythingRanked) {
  serve::TopKHeap s0(8), s1(8);
  s0.Push({3.0f, 0, 0});
  s1.Push({4.0f, 1, 1});
  const auto merged = serve::MergeTopK({s0, s1}, 100);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].item, 1);
  EXPECT_EQ(merged[1].item, 0);
}

// ---------------------------------------------------------------------------
// ShardedPredictor parity with the unsharded Predictor
// ---------------------------------------------------------------------------

TEST(ShardedPredictorTest, ShardCountInvariantAndBitIdenticalToTopKAll) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  // Duplicate scores across shard boundaries: items (2, 7) land in
  // different shards for every shard count > 1, items (3, 4) are adjacent.
  ForceScoreTie(&model, space, 2, 7);
  ForceScoreTie(&model, space, 3, 4);

  serve::PredictorOptions opts;
  opts.micro_batch = 2;  // several chunks per shard even on 9 items
  serve::Predictor predictor(&model, &builder, opts);
  ASSERT_TRUE(predictor.fast_path_active());

  for (size_t threads : {1u, 2u}) {
    util::SetGlobalThreads(threads);
    for (const auto& ex : TestExamples()) {
      // k spans: partial, whole catalog, and k > catalog (clamped).
      for (size_t k : {1u, 3u, 9u, 20u}) {
        const auto want = predictor.TopKAll(ex, k);
        for (size_t shards : {1u, 2u, 3u, 8u}) {
          serve::ShardedPredictor sharded(&predictor, {shards, 0});
          ExpectSameRanking(sharded.TopKAll(ex, k), want,
                            "shards=" + std::to_string(shards) +
                                " k=" + std::to_string(k) +
                                " threads=" + std::to_string(threads));
        }
      }
    }
  }
  util::SetGlobalThreads(1);
}

TEST(ShardedPredictorTest, CustomCatalogWithDuplicateScoresMatchesTopK) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  ForceScoreTie(&model, space, 1, 6);
  serve::Predictor predictor(&model, &builder, {});
  const auto ex = TestExamples()[3];

  // Ids deliberately out of order and duplicated: the tied pair (1, 6) must
  // come out id-ascending whichever positions (and shards) they occupy.
  const std::vector<int32_t> candidates = {6, 8, 1, 0, 6, 2};
  for (size_t shards : {1u, 2u, 3u, 8u}) {
    serve::ShardedPredictor sharded(&predictor, {shards, 0});
    for (size_t k : {2u, 4u, 6u, 10u}) {
      ExpectSameRanking(sharded.TopK(ex, candidates, k),
                        predictor.TopK(ex, candidates, k),
                        "custom catalog shards=" + std::to_string(shards) +
                            " k=" + std::to_string(k));
    }
  }
}

TEST(ShardedPredictorTest, MoreShardsThanCatalogAndTinyCatalogs) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  const auto ex = TestExamples()[0];

  serve::ShardedPredictor sharded(&predictor, {8, 0});
  // 3-item catalog over 8 shards: most shards are empty.
  ExpectSameRanking(sharded.TopK(ex, {4, 2, 7}, 3),
                    predictor.TopK(ex, {4, 2, 7}, 3), "3 items, 8 shards");
  // Single item, and k clamped past it.
  ExpectSameRanking(sharded.TopK(ex, {5}, 4), predictor.TopK(ex, {5}, 4),
                    "1 item, 8 shards");
  // Degenerate requests.
  EXPECT_TRUE(sharded.TopK(ex, std::vector<int32_t>{}, 5).empty());
  EXPECT_TRUE(sharded.TopK(ex, {1, 2}, 0).empty());
  EXPECT_TRUE(sharded.TopKAll(ex, 0).empty());
}

TEST(ShardedPredictorTest, UnevenMicroBatchBoundariesStayBitIdentical) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  const auto ex = TestExamples()[1];
  const auto want = predictor.TopKAll(ex, 9);

  // Chunk sizes that divide shards unevenly (shards of size 3 with chunks
  // of 2, 4, 7) must not change a single bit of the ranking.
  for (size_t micro_batch : {1u, 2u, 4u, 7u}) {
    serve::ShardedPredictor sharded(&predictor, {3, micro_batch});
    ExpectSameRanking(sharded.TopKAll(ex, 9), want,
                      "micro_batch=" + std::to_string(micro_batch));
  }
}

TEST(ShardedPredictorTest, GenericPathModelsShardToo) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.mlp_hidden = 8;
  cfg.keep_prob = 1.0f;
  cfg.seed = 123;
  auto fm = baselines::CreateBaseline("FM", space, cfg).ValueOrDie();
  serve::Predictor predictor(fm.get(), &builder, {});
  ASSERT_FALSE(predictor.fast_path_active());

  const auto ex = TestExamples()[2];
  const auto want = predictor.TopKAll(ex, 5);
  for (size_t shards : {2u, 3u, 8u}) {
    serve::ShardedPredictor sharded(&predictor, {shards, 0});
    ExpectSameRanking(sharded.TopKAll(ex, 5), want,
                      "generic shards=" + std::to_string(shards));
  }
}

TEST(ShardedPredictorDeathTest, NullPredictorAndZeroShardsDie) {
  EXPECT_DEATH(serve::ShardedPredictor(nullptr, {}), "null predictor");
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  EXPECT_DEATH(serve::ShardedPredictor(&predictor, {0, 0}),
               "at least one shard");
}

// ---------------------------------------------------------------------------
// BatchServer wave fan-out across shards
// ---------------------------------------------------------------------------

TEST(ShardedBatchServerTest, ShardedWavesMatchPredictorTopK) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  ForceScoreTie(&model, space, 2, 7);
  const auto examples = TestExamples();
  std::vector<int32_t> catalog(space.num_objects());
  for (size_t i = 0; i < catalog.size(); ++i) {
    catalog[i] = static_cast<int32_t>(i);
  }

  serve::PredictorOptions opts;
  opts.micro_batch = 2;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  serve::Predictor reference(&model, &builder, {});

  for (size_t threads : {1u, 2u}) {
    util::SetGlobalThreads(threads);
    for (size_t shards : {1u, 3u, 8u}) {
      serve::BatchServerOptions server_opts;
      server_opts.num_shards = shards;
      serve::BatchServer server(&predictor, server_opts);
      std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
      std::vector<size_t> ks;
      for (size_t round = 0; round < 2; ++round) {
        for (const auto& ex : examples) {
          const size_t k = 1 + (round + futures.size()) % 6;
          ks.push_back(k);
          futures.push_back(server.Submit(ex, catalog, k));
        }
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        ExpectSameRanking(
            futures[i].get(),
            reference.TopK(examples[i % examples.size()], catalog, ks[i]),
            "shards=" + std::to_string(shards) + " request " +
                std::to_string(i));
      }
    }
  }
  util::SetGlobalThreads(1);
}

TEST(ShardedBatchServerTest, ShardedEdgeCaseRequests) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  serve::BatchServerOptions server_opts;
  server_opts.num_shards = 8;
  serve::BatchServer server(&predictor, server_opts);
  const auto examples = TestExamples();

  auto empty = server.Submit(examples[0], {}, 5);
  auto zero_k = server.Submit(examples[1], {0, 1, 2}, 0);
  auto clamped = server.Submit(examples[2], {0, 1}, 100);
  auto dupes = server.Submit(examples[3], {5, 5, 3}, 3);
  EXPECT_TRUE(empty.get().empty());
  EXPECT_TRUE(zero_k.get().empty());
  EXPECT_EQ(clamped.get().size(), 2u);
  ExpectSameRanking(dupes.get(), predictor.TopK(examples[3], {5, 5, 3}, 3),
                    "duplicate ids through sharded waves");
}

}  // namespace
}  // namespace seqfm
