// Lockdown suite for the distributed serving coordinator
// (src/serve/coordinator.{h,cc}) and the ScoringBackend seam it merges over,
// all in one process so the suite runs clean under TSan:
//   - fleet validation in Ready(): empty fleet, model-version mismatch,
//     partition mismatch, non-canonical slice bounds, uncovered shard —
//     each refused with a FailedPrecondition naming the inconsistency;
//   - coordinator top-K over LocalShardBackends bit-identical to
//     single-process Predictor::TopKAll / ShardedPredictor::TopKAll for
//     shard counts {1, 2, 3}, tie-forced catalogs, and k <, ==, > catalog
//     (including k greater than every shard's slice);
//   - degradation: a failing replica yields PARTIAL with the healthy
//     shards' exact merge; a replicated shard fails over and stays OK; a
//     fully failed fleet yields the empty PARTIAL result, never a hang;
//   - user-affinity routing: a given user sticks to one replica of a
//     replicated shard group across requests;
//   - end-to-end over TCP: coordinator over in-process replica-mode
//     RpcServers (RemoteReplicaBackend transport) matches the local fleet.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/backend.h"
#include "serve/checkpoint.h"
#include "serve/coordinator.h"
#include "serve/predictor.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace seqfm {
namespace {

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

core::SeqFmConfig SmallSeqFmConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};           // single-item history
  examples[2] = {3, 0, 2.0f, {}};            // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

/// Forces items \p a and \p b to score bit-identically for every request
/// (copies a's candidate-dependent rows onto b's) — the duplicate-score
/// workload whose merges only agree because RankBefore is a total order.
void ForceScoreTie(core::SeqFm* model, const data::FeatureSpace& space,
                   int32_t a, int32_t b) {
  const auto view = model->serving_view();
  const size_t dim = model->config().embedding_dim;
  autograd::Variable table = view.static_embedding->table();
  float* rows = table.mutable_value().data();
  const size_t ra = static_cast<size_t>(space.CandidateIndex(a));
  const size_t rb = static_cast<size_t>(space.CandidateIndex(b));
  std::memcpy(rows + rb * dim, rows + ra * dim, dim * sizeof(float));
  autograd::Variable w_static = view.w_static;
  w_static.mutable_value().data()[rb] = w_static.value().data()[ra];
}

void ExpectSameRanking(const std::vector<serve::ScoredItem>& got,
                       const std::vector<serve::ScoredItem>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << context << " rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << context << " rank " << i;
  }
}

serve::ReplicaInfo InfoForShard(uint32_t shard, uint32_t num_shards,
                                size_t catalog, uint64_t version) {
  const std::vector<size_t> bounds =
      serve::ShardedCatalog::Bounds(catalog, num_shards);
  serve::ReplicaInfo info;
  info.shard_index = shard;
  info.num_shards = num_shards;
  info.shard_begin = bounds[shard];
  info.shard_end = bounds[shard + 1];
  info.catalog_size = catalog;
  info.model_version = version;
  return info;
}

/// Backend that fails every batch — a dead replica as the coordinator's
/// fan-out workers see one.
class FailingBackend : public serve::ScoringBackend {
 public:
  Status ScoreTopK(const std::vector<serve::ScoreJob>&,
                   std::vector<std::vector<serve::RankEntry>>*) override {
    return Status::IoError("injected replica failure");
  }
};

/// Delegating backend that counts how many batches it served — the probe
/// for affinity routing.
class CountingBackend : public serve::ScoringBackend {
 public:
  CountingBackend(serve::ScoringBackend* inner, int* calls)
      : inner_(inner), calls_(calls) {}
  Status ScoreTopK(
      const std::vector<serve::ScoreJob>& jobs,
      std::vector<std::vector<serve::RankEntry>>* results) override {
    ++*calls_;
    return inner_->ScoreTopK(jobs, results);
  }

 private:
  serve::ScoringBackend* inner_;
  int* calls_;
};

/// A fixture owning one trained-ish model + predictor with a forced score
/// tie, shared by the parity and degradation tests.
class CoordinatorFleetTest : public ::testing::Test {
 protected:
  CoordinatorFleetTest()
      : space_(SmallSpace()),
        builder_(space_, kSeqLen),
        model_(space_, SmallSeqFmConfig()) {
    ForceScoreTie(&model_, space_, 2, 7);
    ForceScoreTie(&model_, space_, 2, 4);  // three-way tie across shards
    predictor_ = std::make_unique<serve::Predictor>(&model_, &builder_);
  }

  /// Coordinator over num_shards LocalShardBackends (one per shard, all on
  /// the one predictor — each backend only ever sees its shard's jobs).
  std::unique_ptr<serve::Coordinator> LocalFleet(uint32_t num_shards,
                                                 uint64_t version = 7) {
    auto coord = std::make_unique<serve::Coordinator>();
    for (uint32_t s = 0; s < num_shards; ++s) {
      EXPECT_TRUE(
          coord
              ->AddBackend(
                  std::make_unique<serve::LocalShardBackend>(predictor_.get()),
                  InfoForShard(s, num_shards, space_.num_objects(), version))
              .ok());
    }
    EXPECT_TRUE(coord->Ready().ok());
    return coord;
  }

  data::FeatureSpace space_;
  data::BatchBuilder builder_;
  core::SeqFm model_;
  std::unique_ptr<serve::Predictor> predictor_;
};

// ---------------------------------------------------------------------------
// Ready(): fleet validation
// ---------------------------------------------------------------------------

TEST_F(CoordinatorFleetTest, EmptyFleetIsRefused) {
  serve::Coordinator coord;
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("empty fleet"), std::string::npos);
}

TEST_F(CoordinatorFleetTest, ModelVersionMismatchIsRefused) {
  serve::Coordinator coord;
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(0, 2, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(1, 2, space_.num_objects(), 8))
                  .ok());
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("model version mismatch"), std::string::npos);
}

TEST_F(CoordinatorFleetTest, UncoveredShardIsRefused) {
  serve::Coordinator coord;
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(0, 3, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(2, 3, space_.num_objects(), 7))
                  .ok());
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shard 1"), std::string::npos);
  EXPECT_NE(st.ToString().find("no replica"), std::string::npos);
}

TEST_F(CoordinatorFleetTest, NonCanonicalSliceIsRefused) {
  serve::Coordinator coord;
  serve::ReplicaInfo info = InfoForShard(0, 2, space_.num_objects(), 7);
  info.shard_end -= 1;  // claims less than the canonical slice
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              info)
                  .ok());
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("canonical slice"), std::string::npos);
}

TEST_F(CoordinatorFleetTest, PartitionMismatchIsRefused) {
  serve::Coordinator coord;
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(0, 2, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(1, 3, space_.num_objects(), 7))
                  .ok());
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("partition mismatch"), std::string::npos);
}

TEST_F(CoordinatorFleetTest, UsageErrorsAreFailedPrecondition) {
  serve::Coordinator coord;
  serve::CoordinatorResult result;
  EXPECT_FALSE(coord.TopKAll(TestExamples()[0], 3, &result).ok());

  auto fleet = LocalFleet(2);
  EXPECT_FALSE(fleet
                   ->AddBackend(std::make_unique<serve::LocalShardBackend>(
                                    predictor_.get()),
                                InfoForShard(0, 2, space_.num_objects(), 7))
                   .ok())
      << "the fleet is frozen after Ready()";
}

// ---------------------------------------------------------------------------
// Parity: coordinator merge == single-process serving, bit for bit
// ---------------------------------------------------------------------------

TEST_F(CoordinatorFleetTest, TopKAllMatchesSingleProcessForAllShardCounts) {
  for (uint32_t shards : {1u, 2u, 3u}) {
    auto coord = LocalFleet(shards);
    EXPECT_EQ(coord->num_shards(), shards);
    EXPECT_EQ(coord->catalog_size(), space_.num_objects());
    for (const auto& ex : TestExamples()) {
      // k below, at, and beyond the catalog; 5 > every 3-shard slice (3).
      for (size_t k : {1ul, 5ul, space_.num_objects(),
                       space_.num_objects() + 4}) {
        const std::vector<serve::ScoredItem> want =
            predictor_->TopKAll(ex, k);
        serve::CoordinatorResult result;
        ASSERT_TRUE(coord->TopKAll(ex, k, &result).ok());
        EXPECT_EQ(result.status, serve::RpcStatus::kOk);
        EXPECT_EQ(result.shards_total, shards);
        EXPECT_EQ(result.shards_merged, shards);
        ExpectSameRanking(result.items, want,
                          "shards=" + std::to_string(shards) +
                              " user=" + std::to_string(ex.user) +
                              " k=" + std::to_string(k));
      }
    }
  }
}

TEST_F(CoordinatorFleetTest, TopKAllMatchesShardedPredictor) {
  serve::ShardedPredictorOptions sp_opts;
  sp_opts.num_shards = 3;
  serve::ShardedPredictor sharded(predictor_.get(), sp_opts);
  auto coord = LocalFleet(3);
  for (const auto& ex : TestExamples()) {
    const std::vector<serve::ScoredItem> want = sharded.TopKAll(ex, 6);
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord->TopKAll(ex, 6, &result).ok());
    ExpectSameRanking(result.items, want,
                      "vs ShardedPredictor user=" + std::to_string(ex.user));
  }
}

// ---------------------------------------------------------------------------
// Degradation: replica failure yields PARTIAL, failover keeps OK
// ---------------------------------------------------------------------------

TEST_F(CoordinatorFleetTest, FailedShardDegradesToPartialMergeOfTheRest) {
  const uint32_t shards = 3;
  serve::Coordinator coord;
  for (uint32_t s = 0; s < shards; ++s) {
    std::unique_ptr<serve::ScoringBackend> backend;
    if (s == 1) {
      backend = std::make_unique<FailingBackend>();
    } else {
      backend = std::make_unique<serve::LocalShardBackend>(predictor_.get());
    }
    ASSERT_TRUE(coord
                    .AddBackend(std::move(backend),
                                InfoForShard(s, shards, space_.num_objects(),
                                             7))
                    .ok());
  }
  ASSERT_TRUE(coord.Ready().ok());

  const data::SequenceExample ex = TestExamples()[0];
  const size_t k = 4;
  serve::CoordinatorResult result;
  ASSERT_TRUE(coord.TopKAll(ex, k, &result).ok());
  EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
  EXPECT_EQ(result.shards_total, shards);
  EXPECT_EQ(result.shards_merged, shards - 1);

  // The degraded answer is the EXACT merge of the healthy shards — shard 1
  // contributes an empty run, nothing else moves.
  const std::vector<size_t> bounds =
      serve::ShardedCatalog::Bounds(space_.num_objects(), shards);
  serve::LocalShardBackend local(predictor_.get());
  std::vector<serve::ScoreJob> jobs;
  for (uint32_t s = 0; s < shards; ++s) {
    if (s == 1) continue;
    serve::ScoreJob job;
    job.ex = &ex;
    job.begin = bounds[s];
    job.end = bounds[s + 1];
    job.k = std::min(k, job.end - job.begin);
    jobs.push_back(job);
  }
  std::vector<std::vector<serve::RankEntry>> runs;
  ASSERT_TRUE(local.ScoreTopK(jobs, &runs).ok());
  const std::vector<serve::ScoredItem> want =
      serve::MergeSortedRuns(runs, k);
  ExpectSameRanking(result.items, want, "healthy-shard merge");
}

TEST_F(CoordinatorFleetTest, ReplicatedShardFailsOverAndStaysOk) {
  serve::Coordinator coord;
  // Shard 0 has two replicas — one dead, one healthy — in BOTH group
  // orders, so whichever the affinity pick tries first, the worker ends on
  // the healthy one.
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<FailingBackend>(),
                              InfoForShard(0, 2, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(0, 2, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<serve::LocalShardBackend>(
                                  predictor_.get()),
                              InfoForShard(1, 2, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord.Ready().ok());

  for (const auto& ex : TestExamples()) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kOk)
        << "failover must keep the request whole";
    EXPECT_EQ(result.shards_merged, 2u);
    ExpectSameRanking(result.items, predictor_->TopKAll(ex, 4),
                      "failover parity user=" + std::to_string(ex.user));
  }
}

TEST_F(CoordinatorFleetTest, FullyFailedFleetYieldsEmptyPartialNotAHang) {
  serve::Coordinator coord;
  for (uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(coord
                    .AddBackend(std::make_unique<FailingBackend>(),
                                InfoForShard(s, 2, space_.num_objects(), 7))
                    .ok());
  }
  ASSERT_TRUE(coord.Ready().ok());
  serve::CoordinatorResult result;
  ASSERT_TRUE(coord.TopKAll(TestExamples()[0], 3, &result).ok());
  EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
  EXPECT_EQ(result.shards_merged, 0u);
  EXPECT_TRUE(result.items.empty());
}

TEST_F(CoordinatorFleetTest, SameUserSticksToOneReplicaOfAGroup) {
  serve::LocalShardBackend inner(predictor_.get());
  int calls_a = 0;
  int calls_b = 0;
  serve::Coordinator coord;
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<CountingBackend>(&inner,
                                                                &calls_a),
                              InfoForShard(0, 1, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<CountingBackend>(&inner,
                                                                &calls_b),
                              InfoForShard(0, 1, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord.Ready().ok());

  const data::SequenceExample ex = TestExamples()[0];
  for (int i = 0; i < 5; ++i) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 3, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kOk);
  }
  // All five requests landed on the same replica (its context cache stays
  // hot for this user); which of the two is the pick is the hash's choice.
  EXPECT_EQ(calls_a == 0 ? calls_b : calls_a, 5);
  EXPECT_EQ(calls_a == 0 ? calls_a : calls_b, 0);
}

// ---------------------------------------------------------------------------
// End-to-end over TCP: RemoteReplicaBackend against replica-mode RpcServers
// ---------------------------------------------------------------------------

TEST_F(CoordinatorFleetTest, CoordinatorOverTcpReplicasMatchesLocalServing) {
  const uint32_t shards = 2;
  const uint64_t version = serve::ParameterVersion(model_);

  std::vector<std::unique_ptr<serve::BatchServer>> batches;
  std::vector<std::unique_ptr<serve::RpcServer>> servers;
  for (uint32_t s = 0; s < shards; ++s) {
    batches.push_back(std::make_unique<serve::BatchServer>(predictor_.get()));
    serve::RpcServerOptions opts;
    opts.port = 0;
    opts.catalog_size = space_.num_objects();
    opts.shard_index = s;
    opts.num_shards = shards;
    opts.model_version = version;
    servers.push_back(
        std::make_unique<serve::RpcServer>(batches.back().get(), opts));
    ASSERT_TRUE(servers.back()->Start().ok());
  }

  serve::CoordinatorOptions copts;
  copts.replica_timeout_ms = 5000;
  copts.connect_timeout_ms = 5000;
  serve::Coordinator coord(copts);
  for (auto& server : servers) {
    ASSERT_TRUE(coord.AddReplica("127.0.0.1", server->port()).ok());
  }
  ASSERT_TRUE(coord.Ready().ok());
  EXPECT_EQ(coord.model_version(), version);

  for (const auto& ex : TestExamples()) {
    for (size_t k : {1ul, 4ul, space_.num_objects()}) {
      const std::vector<serve::ScoredItem> want = predictor_->TopKAll(ex, k);
      serve::CoordinatorResult result;
      ASSERT_TRUE(coord.TopKAll(ex, k, &result).ok());
      EXPECT_EQ(result.status, serve::RpcStatus::kOk);
      ExpectSameRanking(result.items, want,
                        "tcp user=" + std::to_string(ex.user) +
                            " k=" + std::to_string(k));
    }
  }

  for (auto& server : servers) server->Shutdown();
}

// ---------------------------------------------------------------------------
// Self-healing: circuit breaker, retry budget, slow-replica ejection
// ---------------------------------------------------------------------------

/// Backend whose health is a switch: fails while *dead_ is set, otherwise
/// delegates — a replica that dies and later recovers.
class SwitchableBackend : public serve::ScoringBackend {
 public:
  SwitchableBackend(serve::ScoringBackend* inner, bool* dead)
      : inner_(inner), dead_(dead) {}
  Status ScoreTopK(
      const std::vector<serve::ScoreJob>& jobs,
      std::vector<std::vector<serve::RankEntry>>* results) override {
    if (*dead_) return Status::IoError("injected: replica down");
    return inner_->ScoreTopK(jobs, results);
  }

 private:
  serve::ScoringBackend* inner_;
  bool* dead_;
};

TEST_F(CoordinatorFleetTest, CircuitBreakerEjectsProbesAndReadmits) {
  // One shard, one switchable member: the breaker's full lifecycle in
  // isolation — CLOSED -> OPEN after two consecutive failures, a failed
  // half-open probe re-opens, a successful one readmits.
  bool dead = true;
  serve::CoordinatorOptions opts;
  opts.max_consecutive_failures = 2;
  opts.circuit_open_ms = 50;
  serve::Coordinator coord(opts);
  serve::LocalShardBackend local(predictor_.get());
  ASSERT_TRUE(coord
                  .AddBackend(std::make_unique<SwitchableBackend>(&local,
                                                                  &dead),
                              InfoForShard(0, 1, space_.num_objects(), 7))
                  .ok());
  ASSERT_TRUE(coord.Ready().ok());
  const data::SequenceExample ex = TestExamples()[0];

  for (int i = 0; i < 2; ++i) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
  }
  {
    const serve::CoordinatorStats cs = coord.stats();
    EXPECT_EQ(cs.circuit_opens, 1u);
    EXPECT_EQ(cs.half_open_probes, 0u);
  }

  // Window expired, member still dead: the next request is the half-open
  // trial, and its failure re-opens the circuit for another window.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
    const serve::CoordinatorStats cs = coord.stats();
    EXPECT_EQ(cs.half_open_probes, 1u);
    EXPECT_EQ(cs.circuit_reopens, 1u);
    EXPECT_EQ(cs.circuit_closes, 0u);
  }

  // Member recovers: the next probe succeeds, closes the circuit, and the
  // request it rode is answered OK bit-identical to the reference.
  dead = false;
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kOk);
    ExpectSameRanking(result.items, predictor_->TopKAll(ex, 4),
                      "probe readmission");
    const serve::CoordinatorStats cs = coord.stats();
    EXPECT_EQ(cs.half_open_probes, 2u);
    EXPECT_EQ(cs.circuit_closes, 1u);
  }

  // Readmitted for real: ordinary traffic flows again.
  serve::CoordinatorResult result;
  ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
  EXPECT_EQ(result.status, serve::RpcStatus::kOk);
}

TEST_F(CoordinatorFleetTest, RetryBudgetCapsFailoverAmplification) {
  // A shard group of two permanently failing members: every request wants a
  // failover, but only `burst` of them may get one — a mass outage must not
  // multiply traffic by the group size.
  serve::CoordinatorOptions opts;
  opts.retry_budget_ratio = 0.0;  // isolate the burst term
  opts.retry_budget_burst = 2;
  opts.max_consecutive_failures = 100;  // keep the breaker out of the way
  serve::Coordinator coord(opts);
  FailingBackend fail_a, fail_b;
  int calls_a = 0, calls_b = 0;
  const serve::ReplicaInfo info =
      InfoForShard(0, 1, space_.num_objects(), 7);
  ASSERT_TRUE(
      coord.AddBackend(std::make_unique<CountingBackend>(&fail_a, &calls_a),
                       info)
          .ok());
  ASSERT_TRUE(
      coord.AddBackend(std::make_unique<CountingBackend>(&fail_b, &calls_b),
                       info)
          .ok());
  ASSERT_TRUE(coord.Ready().ok());

  const data::SequenceExample ex = TestExamples()[0];
  for (int i = 0; i < 5; ++i) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
  }
  // 5 first attempts (free) + exactly `burst` failovers; the other 3
  // failovers are denied, so the shard is declared lost early instead of
  // doubling the traffic of every request.
  EXPECT_EQ(calls_a + calls_b, 7);
  const serve::CoordinatorStats cs = coord.stats();
  EXPECT_EQ(cs.shard_attempts, 5u);
  EXPECT_EQ(cs.retries, 2u);
  EXPECT_EQ(cs.retries_denied, 3u);
}

TEST_F(CoordinatorFleetTest, SlowReplicaTimesOutIsEjectedAndFailsOver) {
  // One shard served by TWO in-process TCP replicas. The first shard
  // request in the process is blackholed (rpc.server.shard.drop: accepted,
  // never answered) — the affinity replica "hangs", only the io timeout can
  // surface it, and the worker must fail over to the twin within the
  // per-replica budget instead of hanging.
  const uint64_t version = serve::ParameterVersion(model_);
  std::vector<std::unique_ptr<serve::BatchServer>> batches;
  std::vector<std::unique_ptr<serve::RpcServer>> servers;
  for (int r = 0; r < 2; ++r) {
    batches.push_back(std::make_unique<serve::BatchServer>(predictor_.get()));
    serve::RpcServerOptions sopts;
    sopts.port = 0;
    sopts.catalog_size = space_.num_objects();
    sopts.shard_index = 0;
    sopts.num_shards = 1;
    sopts.model_version = version;
    servers.push_back(
        std::make_unique<serve::RpcServer>(batches.back().get(), sopts));
    ASSERT_TRUE(servers.back()->Start().ok());
  }

  serve::CoordinatorOptions copts;
  copts.replica_timeout_ms = 300;  // the bound a blackholed request costs
  copts.connect_timeout_ms = 5000;
  copts.max_consecutive_failures = 1;  // a single timeout ejects
  copts.circuit_open_ms = 10000;       // and it stays ejected for this test
  serve::Coordinator coord(copts);
  for (auto& server : servers) {
    ASSERT_TRUE(coord.AddReplica("127.0.0.1", server->port()).ok());
  }
  ASSERT_TRUE(coord.Ready().ok());

  util::ScopedFailPoint drop("rpc.server.shard.drop", [] {
    util::FailPoint::Spec spec;
    spec.mode = util::FailPoint::Mode::kNth;
    spec.n = 1;
    return spec;
  }());

  const data::SequenceExample ex = TestExamples()[0];
  const auto t0 = std::chrono::steady_clock::now();
  serve::CoordinatorResult result;
  ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // The failover saved the request: OK, bit-identical, and bounded — one io
  // timeout plus the healthy twin's work, nowhere near a hang.
  EXPECT_EQ(result.status, serve::RpcStatus::kOk);
  ExpectSameRanking(result.items, predictor_->TopKAll(ex, 4),
                    "slow-replica failover");
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_EQ(util::FailPoint::Stats("rpc.server.shard.drop").failures, 1u);
  {
    const serve::CoordinatorStats cs = coord.stats();
    EXPECT_EQ(cs.retries, 1u);
    EXPECT_EQ(cs.circuit_opens, 1u);  // the slow member is ejected...
  }

  // ...so the next request routes straight to the healthy twin: no new
  // timeout, no new retry, still OK.
  serve::CoordinatorResult next;
  ASSERT_TRUE(coord.TopKAll(ex, 4, &next).ok());
  EXPECT_EQ(next.status, serve::RpcStatus::kOk);
  ExpectSameRanking(next.items, predictor_->TopKAll(ex, 4), "post-ejection");
  {
    const serve::CoordinatorStats cs = coord.stats();
    EXPECT_EQ(cs.retries, 1u);
    EXPECT_EQ(cs.circuit_opens, 1u);
  }

  for (auto& server : servers) server->Shutdown();
}

}  // namespace
}  // namespace seqfm
