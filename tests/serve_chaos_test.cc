// Chaos suite for the self-healing serving fleet: real replica processes,
// a real serve::Coordinator, and SEEDED randomized fault schedules injected
// through util::FailPoint at the transport and checkpoint I/O boundaries.
// Every run asserts the three chaos invariants:
//   1. never wrong bits — every answer the coordinator reports as OK is
//      bit-identical to the fault-free single-process reference
//      (Predictor::TopKAll over the same checkpoint);
//   2. never a hang — every request completes within its timeouts (the
//      suite's ctest TIMEOUT is the backstop; blackholed requests are
//      bounded by the replica io timeout);
//   3. exact accounting — ok + partial + failed == submitted, with zero
//      `failed` (transport faults must degrade to PARTIAL, never to a
//      Status error after Ready()).
// Plus full recovery: once schedules disarm, the fleet must return to OK
// bit-identical answers; and a SIGKILLed replica restarted on the SAME port
// must be readmitted by the circuit breaker's half-open probe.
//
// Seeds come from SEQFM_CHAOS_SEEDS (comma-separated; default "7") so CI
// can sweep; every run appends its schedule + outcome to SEQFM_CHAOS_LOG
// (default $TMPDIR/serve_chaos_schedule.log) for artifact upload on failure.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/checkpoint.h"
#include "serve/coordinator.h"
#include "serve/predictor.h"
#include "tests/replica_process.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace seqfm {
namespace {

using testing_util::ReplicaProcess;
using testing_util::ReplicaProcessConfig;
using util::FailPoint;

constexpr size_t kSeqLen = 6;
constexpr size_t kUsers = 5;
constexpr size_t kItems = 9;
constexpr size_t kDim = 8;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(kUsers, kItems); }

core::SeqFmConfig ReplicaConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = kDim;
  cfg.max_seq_len = kSeqLen;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};
  examples[1] = {2, 6, 0.5f, {5}};
  examples[2] = {3, 0, 2.0f, {}};
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

/// Forces items \p a and \p b to score bit-identically (applied before
/// Save): ties crossing process boundaries are the hardest case for the
/// never-wrong-bits invariant, since any score perturbation flips the order.
void ForceScoreTie(core::SeqFm* model, const data::FeatureSpace& space,
                   int32_t a, int32_t b) {
  const auto view = model->serving_view();
  const size_t dim = model->config().embedding_dim;
  autograd::Variable table = view.static_embedding->table();
  float* rows = table.mutable_value().data();
  const size_t ra = static_cast<size_t>(space.CandidateIndex(a));
  const size_t rb = static_cast<size_t>(space.CandidateIndex(b));
  std::memcpy(rows + rb * dim, rows + ra * dim, dim * sizeof(float));
  autograd::Variable w_static = view.w_static;
  w_static.mutable_value().data()[rb] = w_static.value().data()[ra];
}

void ExpectSameRanking(const std::vector<serve::ScoredItem>& got,
                       const std::vector<serve::ScoredItem>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << context << " rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << context << " rank " << i;
  }
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

const std::string& SharedCheckpoint() {
  static const std::string path = [] {
    const std::string p = TempPath("serve_chaos_model.bin");
    data::FeatureSpace space = SmallSpace();
    core::SeqFm model(space, ReplicaConfig());
    ForceScoreTie(&model, space, 2, 7);
    ForceScoreTie(&model, space, 2, 4);
    SEQFM_CHECK(serve::Checkpoint::Save(model, p).ok());
    return p;
  }();
  return path;
}

/// Seeds to sweep, from SEQFM_CHAOS_SEEDS ("1,2,3"); default one seed so the
/// suite stays fast locally while CI can widen the sweep.
std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("SEQFM_CHAOS_SEEDS");
  const std::string text(env != nullptr && env[0] != '\0' ? env : "7");
  for (size_t begin = 0; begin <= text.size();) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string one = text.substr(begin, end - begin);
    if (!one.empty()) {
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(one.c_str(), &endp, 10);
      if (endp == one.c_str() + one.size()) {
        seeds.push_back(static_cast<uint64_t>(v));
      }
    }
    begin = end + 1;
    if (comma == std::string::npos) break;
  }
  if (seeds.empty()) seeds.push_back(7);
  return seeds;
}

/// Appends one line to the chaos log — the artifact CI uploads when a seeded
/// run fails, so the exact schedule that broke an invariant is recoverable.
void LogSchedule(const std::string& line) {
  const char* env = std::getenv("SEQFM_CHAOS_LOG");
  const std::string path =
      (env != nullptr && env[0] != '\0') ? env
                                         : TempPath("serve_chaos_schedule.log");
  std::ofstream out(path, std::ios::app);
  out << line << "\n";
}

constexpr int kNumSchedules = 3;

const char* ScheduleName(int schedule) {
  switch (schedule) {
    case 0: return "conn-drops";
    case 1: return "torn-frames";
    default: return "mixed";
  }
}

/// Client-side fault schedule: the sites armed in THIS process, hitting the
/// coordinator's RpcClients. All probability-mode, so every fail/pass
/// decision is a pure function of (derived seed, hit index).
std::vector<std::pair<std::string, FailPoint::Spec>> ScheduleSites(
    int schedule, uint64_t seed) {
  auto prob = [&](double p, uint64_t salt) {
    FailPoint::Spec spec;
    spec.mode = FailPoint::Mode::kProb;
    spec.p = p;
    spec.seed = seed * 1315423911ull + salt;
    return spec;
  };
  switch (schedule) {
    case 0:  // connection drops: sends and reads fail, sockets close
      return {{"rpc.client.send", prob(0.08, 1)},
              {"rpc.client.read", prob(0.08, 2)}};
    case 1:  // torn frames poison the stream; reconnect handshakes flake
      return {{"rpc.frame.torn", prob(0.05, 3)},
              {"rpc.client.hello", prob(0.25, 4)}};
    default:  // everything at once, including reconnect failures
      return {{"rpc.client.send", prob(0.05, 5)},
              {"rpc.client.read", prob(0.05, 6)},
              {"rpc.frame.torn", prob(0.03, 7)},
              {"rpc.client.connect", prob(0.30, 8)}};
  }
}

/// Server-side fault schedule, shipped to replica processes via their
/// SEQFM_FAILPOINTS environment: the "mixed" schedule blackholes a bounded
/// number of shard requests (the replica accepts and never answers), so the
/// io-timeout path runs under chaos too. limit=1 keeps the wall-clock cost
/// at one timeout per replica.
std::string ScheduleReplicaFailpoints(int schedule, uint64_t seed) {
  if (schedule != 2) return "";
  return "rpc.server.shard.drop=prob:0.15:seed=" +
         std::to_string(seed * 2654435761ull + 99) + ":limit=1";
}

ReplicaProcessConfig ChaosReplica(const std::string& checkpoint,
                                  uint32_t shard_index, uint32_t num_shards) {
  ReplicaProcessConfig config;
  config.checkpoint = checkpoint;
  config.shard_index = shard_index;
  config.num_shards = num_shards;
  config.users = kUsers;
  config.items = kItems;
  config.dim = kDim;
  config.max_seq_len = kSeqLen;
  return config;
}

serve::Coordinator MakeChaosCoordinator() {
  serve::CoordinatorOptions opts;
  opts.replica_timeout_ms = 800;  // bounds a blackholed request
  opts.connect_timeout_ms = 5000;
  opts.max_consecutive_failures = 2;  // eject fast under injected faults
  opts.circuit_open_ms = 100;         // and probe for readmission fast
  opts.retry_budget_burst = 16;
  return serve::Coordinator(opts);
}

class ChaosServingTest : public ::testing::Test {
 protected:
  ChaosServingTest()
      : space_(SmallSpace()), builder_(space_, kSeqLen),
        model_(space_, ReplicaConfig()) {
    SEQFM_CHECK(serve::Checkpoint::Load(&model_, SharedCheckpoint()).ok());
    predictor_ = std::make_unique<serve::Predictor>(&model_, &builder_);
  }
  ~ChaosServingTest() override { FailPoint::DisarmAll(); }

  data::FeatureSpace space_;
  data::BatchBuilder builder_;
  core::SeqFm model_;
  std::unique_ptr<serve::Predictor> predictor_;
};

TEST_F(ChaosServingTest, FleetInvariantsHoldUnderSeededFaultSchedules) {
  // Fleet shapes: unreplicated 1- and 3-shard fleets (a shard failure is a
  // PARTIAL), plus a 2-shards-x-2-replicas fleet where failover inside the
  // group can still save the request (and spends the retry budget).
  const std::vector<std::pair<uint32_t, uint32_t>> shapes = {
      {1, 1}, {3, 1}, {2, 2}};
  const std::vector<data::SequenceExample> examples = TestExamples();

  for (const uint64_t seed : ChaosSeeds()) {
    for (const auto& [shards, replicas_per_shard] : shapes) {
      for (int schedule = 0; schedule < kNumSchedules; ++schedule) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" +
                     std::to_string(shards) + "x" +
                     std::to_string(replicas_per_shard) + " schedule=" +
                     ScheduleName(schedule));
        const std::string replica_faults =
            ScheduleReplicaFailpoints(schedule, seed);
        std::vector<std::unique_ptr<ReplicaProcess>> fleet;
        serve::Coordinator coord = MakeChaosCoordinator();
        for (uint32_t s = 0; s < shards; ++s) {
          for (uint32_t r = 0; r < replicas_per_shard; ++r) {
            ReplicaProcessConfig config =
                ChaosReplica(SharedCheckpoint(), s, shards);
            config.failpoints = replica_faults;
            fleet.push_back(std::make_unique<ReplicaProcess>());
            ASSERT_TRUE(fleet.back()->Launch(config));
            ASSERT_TRUE(
                coord.AddReplica("127.0.0.1", fleet.back()->port()).ok());
          }
        }
        ASSERT_TRUE(coord.Ready().ok());

        // Baseline first: the fleet must serve an OK bit-identical answer
        // before client-side chaos is armed. Server-side schedules (the
        // "mixed" replica blackhole) are already live from replica startup
        // but limit-bounded, so retrying converges to OK.
        const data::SequenceExample& ex0 = examples[0];
        const auto base_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        bool base_ok = false;
        while (std::chrono::steady_clock::now() < base_deadline) {
          serve::CoordinatorResult base;
          ASSERT_TRUE(coord.TopKAll(ex0, 4, &base).ok());
          if (base.status == serve::RpcStatus::kOk) {
            ExpectSameRanking(base.items, predictor_->TopKAll(ex0, 4),
                              "baseline");
            base_ok = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        ASSERT_TRUE(base_ok) << "fleet never served an OK baseline";

        const auto sites = ScheduleSites(schedule, seed);
        for (const auto& [site, spec] : sites) FailPoint::Arm(site, spec);

        uint64_t submitted = 0, ok = 0, partial = 0, failed = 0;
        for (int round = 0; round < 2; ++round) {
          for (const auto& ex : examples) {
            for (size_t k : {size_t{1}, size_t{4}, kItems}) {
              ++submitted;
              serve::CoordinatorResult result;
              const Status st = coord.TopKAll(ex, k, &result);
              if (!st.ok()) {
                ++failed;
                continue;
              }
              if (result.status == serve::RpcStatus::kOk) {
                ++ok;
                // Invariant 1: an answer reported OK is bit-identical to
                // the fault-free reference, chaos or no chaos.
                ExpectSameRanking(result.items, predictor_->TopKAll(ex, k),
                                  "user=" + std::to_string(ex.user) +
                                      " k=" + std::to_string(k));
              } else {
                ++partial;
              }
            }
          }
        }
        // Invariant 3: exact accounting — and after Ready() transport
        // faults must degrade (PARTIAL), never surface as Status errors.
        EXPECT_EQ(ok + partial + failed, submitted);
        EXPECT_EQ(failed, 0u);

        std::string armed;
        for (const auto& [site, spec] : sites) {
          const FailPoint::SiteStats st = FailPoint::Stats(site);
          armed += " " + site + "(hits=" + std::to_string(st.hits) +
                   ",failures=" + std::to_string(st.failures) + ")";
        }
        const serve::CoordinatorStats cs = coord.stats();
        LogSchedule("seed=" + std::to_string(seed) + " fleet=" +
                    std::to_string(shards) + "x" +
                    std::to_string(replicas_per_shard) + " schedule=" +
                    ScheduleName(schedule) + " replica_faults='" +
                    replica_faults + "' submitted=" +
                    std::to_string(submitted) + " ok=" + std::to_string(ok) +
                    " partial=" + std::to_string(partial) + " retries=" +
                    std::to_string(cs.retries) + " circuit_opens=" +
                    std::to_string(cs.circuit_opens) + " reconnects=" +
                    std::to_string(cs.reconnects) + " sites:" + armed);
        FailPoint::DisarmAll();

        // Full recovery: schedules disarmed (replica-side bursts are
        // limit-bounded), the fleet must converge back to OK bit-identical
        // answers — reconnects and half-open probes do the healing.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        bool recovered = false;
        while (std::chrono::steady_clock::now() < deadline) {
          serve::CoordinatorResult result;
          ASSERT_TRUE(coord.TopKAll(ex0, 4, &result).ok());
          if (result.status == serve::RpcStatus::kOk) {
            ExpectSameRanking(result.items, predictor_->TopKAll(ex0, 4),
                              "post-chaos recovery");
            recovered = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        EXPECT_TRUE(recovered)
            << "fleet did not return to OK after schedules disarmed";
      }
    }
  }
}

TEST_F(ChaosServingTest, KilledReplicaIsReadmittedByHalfOpenProbe) {
  // Two shards, one replica each. SIGKILL shard 1's replica, let the
  // breaker eject it, restart the SAME binary on the SAME port, and require
  // the half-open probe to readmit it — serving bit-identical answers.
  const uint32_t shards = 2;
  std::vector<std::unique_ptr<ReplicaProcess>> fleet;
  serve::Coordinator coord = MakeChaosCoordinator();
  for (uint32_t s = 0; s < shards; ++s) {
    fleet.push_back(std::make_unique<ReplicaProcess>());
    ASSERT_TRUE(fleet.back()->Launch(ChaosReplica(SharedCheckpoint(), s,
                                                  shards)));
    ASSERT_TRUE(coord.AddReplica("127.0.0.1", fleet.back()->port()).ok());
  }
  ASSERT_TRUE(coord.Ready().ok());

  const data::SequenceExample ex = TestExamples()[0];
  const std::vector<serve::ScoredItem> want = predictor_->TopKAll(ex, 4);
  serve::CoordinatorResult healthy;
  ASSERT_TRUE(coord.TopKAll(ex, 4, &healthy).ok());
  ASSERT_EQ(healthy.status, serve::RpcStatus::kOk);
  ExpectSameRanking(healthy.items, want, "healthy baseline");

  const uint16_t port1 = fleet[1]->port();
  fleet[1]->Kill();  // no drain, no goodbye

  // Drive requests into the dead shard until the breaker has ejected it AND
  // a half-open probe has run against the corpse (and re-opened the
  // circuit) — so the probe machinery is demonstrably what stands between
  // the dead member and traffic. Every request degrades to PARTIAL.
  const auto eject_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < eject_deadline) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    EXPECT_EQ(result.status, serve::RpcStatus::kPartial);
    const serve::CoordinatorStats cs = coord.stats();
    if (cs.circuit_opens >= 1 && cs.half_open_probes >= 1 &&
        cs.circuit_reopens >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  {
    const serve::CoordinatorStats cs = coord.stats();
    ASSERT_GE(cs.circuit_opens, 1u);
    ASSERT_GE(cs.half_open_probes, 1u) << "no probe ran against the corpse";
    ASSERT_GE(cs.circuit_reopens, 1u) << "failed probe must re-open";
  }

  // Resurrect the replica at the address the coordinator already holds.
  ReplicaProcessConfig config = ChaosReplica(SharedCheckpoint(), 1, shards);
  config.port = port1;
  fleet[1] = std::make_unique<ReplicaProcess>();
  ASSERT_TRUE(fleet[1]->Launch(config));
  ASSERT_EQ(fleet[1]->port(), port1);

  // The breaker must readmit it via a half-open probe (no operator action),
  // after which answers are OK and bit-identical again. Polling slower than
  // the circuit window keeps each attempt on the probe path.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool readmitted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    serve::CoordinatorResult result;
    ASSERT_TRUE(coord.TopKAll(ex, 4, &result).ok());
    if (result.status == serve::RpcStatus::kOk) {
      ExpectSameRanking(result.items, want, "after readmission");
      readmitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  ASSERT_TRUE(readmitted) << "restarted replica was never readmitted";

  const serve::CoordinatorStats cs = coord.stats();
  EXPECT_GE(cs.circuit_closes, 1u);
  EXPECT_GE(cs.reconnects, 1u);
  LogSchedule("kill-restart port=" + std::to_string(port1) +
              " probes=" + std::to_string(cs.half_open_probes) +
              " closes=" + std::to_string(cs.circuit_closes) +
              " reconnects=" + std::to_string(cs.reconnects));
}

TEST(CheckpointChaosTest, FaultScheduleNeverCorruptsLastGoodCheckpoint) {
  // Randomized checkpoint I/O faults: whatever fails (open, write, fsync,
  // or the crash-before-rename), the file at the final path must always be
  // the LAST SUCCESSFUL save, bit for bit — atomicity under chaos.
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string path =
        TempPath("serve_chaos_ckpt_" + std::to_string(seed) + ".bin");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    data::FeatureSpace space = SmallSpace();
    core::SeqFm a(space, ReplicaConfig(/*seed=*/111));
    core::SeqFm b(space, ReplicaConfig(/*seed=*/222));
    ASSERT_TRUE(serve::Checkpoint::Save(a, path).ok());
    uint64_t expected = serve::ParameterVersion(a);

    const char* kSites[] = {"ckpt.open", "ckpt.write", "ckpt.fsync",
                            "ckpt.rename"};
    for (size_t i = 0; i < 4; ++i) {
      FailPoint::Spec spec;
      spec.mode = FailPoint::Mode::kProb;
      spec.p = 0.25;
      spec.seed = seed * 0x9e3779b97f4a7c15ull + i;
      FailPoint::Arm(kSites[i], spec);
    }

    uint64_t injected = 0;
    for (int iter = 0; iter < 40; ++iter) {
      core::SeqFm& model = (iter % 2 == 0) ? b : a;
      const Status st = serve::Checkpoint::Save(model, path);
      if (st.ok()) {
        expected = serve::ParameterVersion(model);
      } else {
        ++injected;
      }
      // The invariant: a reader always sees the last good checkpoint, even
      // right after a failed save (including a simulated crash that left a
      // .tmp orphan — Load's janitor sweeps it and reads the real file).
      core::SeqFm probe(space, ReplicaConfig(/*seed=*/333));
      ASSERT_TRUE(serve::Checkpoint::Load(&probe, path).ok())
          << "iter " << iter;
      EXPECT_EQ(serve::ParameterVersion(probe), expected) << "iter " << iter;
    }
    FailPoint::DisarmAll();
    EXPECT_GT(injected, 0u) << "schedule never fired — chaos did not run";
    LogSchedule("ckpt-chaos seed=" + std::to_string(seed) +
                " injected=" + std::to_string(injected));

    // Disarmed, saves work and leave no debris behind.
    ASSERT_TRUE(serve::Checkpoint::Save(a, path).ok());
    EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace seqfm
