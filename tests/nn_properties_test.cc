// Property-style tests of the neural building blocks: invariances and
// equivariances that must hold for ANY parameter values, checked over random
// draws (TEST_P over seeds).
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "optim/optimizer.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace seqfm {
namespace nn {
namespace {

using autograd::Variable;
using tensor::Tensor;

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// LayerNorm invariances
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, LayerNormIsShiftInvariant) {
  Rng rng(GetParam());
  Tensor x({3, 8});
  tensor::FillNormal(&x, &rng, 1.0f);
  Tensor shifted = x;
  const float c = static_cast<float>(rng.Uniform(-5.0, 5.0));
  for (size_t i = 0; i < shifted.size(); ++i) shifted.data()[i] += c;

  LayerNorm ln(8);
  Variable ya = ln.Forward(Variable::Constant(x));
  Variable yb = ln.Forward(Variable::Constant(shifted));
  for (size_t i = 0; i < ya.value().size(); ++i) {
    EXPECT_NEAR(ya.value().data()[i], yb.value().data()[i], 1e-3f);
  }
}

TEST_P(SeededPropertyTest, LayerNormIsScaleInvariant) {
  Rng rng(GetParam());
  Tensor x({2, 6});
  tensor::FillNormal(&x, &rng, 1.0f);
  Tensor scaled = x;
  const float c = static_cast<float>(rng.Uniform(0.5, 4.0));
  scaled.Scale(c);

  LayerNorm ln(6);
  Variable ya = ln.Forward(Variable::Constant(x));
  Variable yb = ln.Forward(Variable::Constant(scaled));
  for (size_t i = 0; i < ya.value().size(); ++i) {
    EXPECT_NEAR(ya.value().data()[i], yb.value().data()[i], 2e-3f);
  }
}

// ---------------------------------------------------------------------------
// Self-attention equivariances
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, UnmaskedAttentionIsPermutationEquivariant) {
  // The static view has no positional information: permuting the input rows
  // must permute the output rows identically (the paper treats static
  // features as an unordered set, Sec. III-B).
  Rng rng(GetParam());
  const size_t n = 5, d = 6;
  SelfAttention attention(d, &rng);
  Tensor x({1, n, d});
  Rng data_rng(GetParam() + 1000);
  tensor::FillNormal(&x, &data_rng, 1.0f);

  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  data_rng.Shuffle(perm);
  Tensor permuted({1, n, d});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) permuted.at(0, i, j) = x.at(0, perm[i], j);
  }

  Variable ha = attention.Forward(Variable::Constant(x), Variable());
  Variable hb = attention.Forward(Variable::Constant(permuted), Variable());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(hb.value().at(0, i, j), ha.value().at(0, perm[i], j), 1e-4f);
    }
  }
}

TEST_P(SeededPropertyTest, CausalAttentionPrefixProperty) {
  // Row i of the causally-masked output depends only on rows 0..i: computing
  // attention on the truncated prefix must reproduce the first i+1 rows.
  Rng rng(GetParam());
  const size_t n = 6, d = 4, cut = 3;
  SelfAttention attention(d, &rng);
  Tensor x({1, n, d});
  Rng data_rng(GetParam() + 2000);
  tensor::FillNormal(&x, &data_rng, 1.0f);
  Tensor prefix({1, cut, d});
  for (size_t i = 0; i < cut; ++i) {
    for (size_t j = 0; j < d; ++j) prefix.at(0, i, j) = x.at(0, i, j);
  }

  Variable full =
      attention.Forward(Variable::Constant(x), MakeCausalMask(n));
  Variable part =
      attention.Forward(Variable::Constant(prefix), MakeCausalMask(cut));
  for (size_t i = 0; i < cut; ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(part.value().at(0, i, j), full.value().at(0, i, j), 1e-5f);
    }
  }
}

TEST_P(SeededPropertyTest, AttentionRowsAreConvexCombinationsOfValues) {
  // Each output row is a convex combination of value rows, so its entries
  // are bounded by the min/max of the value projection's entries.
  Rng rng(GetParam());
  const size_t n = 7, d = 5;
  SelfAttention attention(d, &rng);
  Tensor x({2, n, d});
  Rng data_rng(GetParam() + 3000);
  tensor::FillNormal(&x, &data_rng, 1.0f);
  Variable e = Variable::Constant(std::move(x));
  Variable h = attention.Forward(e, Variable());

  // Recompute V = E Wv to get bounds.
  const auto named = attention.NamedParameters();
  Variable wv;
  for (const auto& [name, var] : named) {
    if (name == "wv") wv = var;
  }
  ASSERT_TRUE(wv.defined());
  Variable v = autograd::BmmShared(e, wv);
  for (size_t b = 0; b < 2; ++b) {
    for (size_t j = 0; j < d; ++j) {
      float lo = 1e30f, hi = -1e30f;
      for (size_t i = 0; i < n; ++i) {
        lo = std::min(lo, v.value().at(b, i, j));
        hi = std::max(hi, v.value().at(b, i, j));
      }
      for (size_t i = 0; i < n; ++i) {
        EXPECT_GE(h.value().at(b, i, j), lo - 1e-4f);
        EXPECT_LE(h.value().at(b, i, j), hi + 1e-4f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Optimization sanity on random problems
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, OneAdamStepReducesLossOnRandomLinearProblem) {
  Rng rng(GetParam());
  Linear fc(6, 1, &rng);
  Tensor x({16, 6});
  tensor::FillNormal(&x, &rng, 1.0f);
  std::vector<float> targets(16);
  for (auto& t : targets) t = static_cast<float>(rng.Normal(0.0, 1.0));
  Variable input = Variable::Constant(std::move(x));

  optim::Adam opt(fc.Parameters(), 0.01f);
  auto loss_value = [&]() {
    return autograd::MseLoss(fc.Forward(input), targets).value().at(0);
  };
  const float before = loss_value();
  for (int i = 0; i < 20; ++i) {
    opt.ZeroGrad();
    Variable loss = autograd::MseLoss(fc.Forward(input), targets);
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(loss_value(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(11u, 23u, 59u, 101u, 977u));

}  // namespace
}  // namespace nn
}  // namespace seqfm
