#include <gtest/gtest.h>

#include <vector>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace core {
namespace {

struct TrainFixture {
  explicit TrainFixture(const std::string& preset, double scale = 0.15)
      : log(data::SyntheticDatasetGenerator(
                data::SyntheticDatasetGenerator::Preset(preset, scale)
                    .ValueOrDie())
                .Generate()
                .ValueOrDie()),
        dataset(data::TemporalDataset::FromLog(log).ValueOrDie()),
        space(log.num_users(), log.num_objects()),
        builder(space, /*max_seq_len=*/8) {}

  data::InteractionLog log;
  data::TemporalDataset dataset;
  data::FeatureSpace space;
  data::BatchBuilder builder;
};

SeqFmConfig TinyModelConfig() {
  SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = 8;
  cfg.keep_prob = 1.0f;
  return cfg;
}

TrainConfig TinyTrainConfig(Task task) {
  TrainConfig cfg;
  cfg.task = task;
  cfg.epochs = 3;
  cfg.batch_size = 64;
  cfg.learning_rate = 5e-3f;
  cfg.num_negatives = 1;
  return cfg;
}

TEST(TrainerTest, RankingLossDecreases) {
  TrainFixture fx("gowalla");
  SeqFm model(fx.space, TinyModelConfig());
  Trainer trainer(&model, &fx.builder, &fx.dataset,
                  TinyTrainConfig(Task::kRanking));
  auto result = trainer.Train();
  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_LT(result.epochs.back().mean_loss, result.epochs.front().mean_loss);
  // BPR loss starts near log(2) for a random scorer.
  EXPECT_NEAR(result.epochs.front().mean_loss, 0.693, 0.2);
}

TEST(TrainerTest, ClassificationLossDecreases) {
  TrainFixture fx("trivago");
  SeqFm model(fx.space, TinyModelConfig());
  Trainer trainer(&model, &fx.builder, &fx.dataset,
                  TinyTrainConfig(Task::kClassification));
  auto result = trainer.Train();
  EXPECT_LT(result.final_loss, result.epochs.front().mean_loss);
}

TEST(TrainerTest, RegressionLossDecreasesBelowVarianceBaseline) {
  TrainFixture fx("beauty", 0.3);
  SeqFm model(fx.space, TinyModelConfig());
  TrainConfig cfg = TinyTrainConfig(Task::kRegression);
  cfg.epochs = 8;
  Trainer trainer(&model, &fx.builder, &fx.dataset, cfg);
  auto result = trainer.Train();
  // Ratings live in [1,5] with mean ~3; a model must at least beat the
  // "predict 0" squared error of ~9-10 by a wide margin.
  EXPECT_LT(result.final_loss, 2.0);
  EXPECT_LT(result.final_loss, result.epochs.front().mean_loss);
}

TEST(TrainerTest, EpochStatsTrackStepsAndTime) {
  TrainFixture fx("toys", 0.2);
  SeqFm model(fx.space, TinyModelConfig());
  TrainConfig cfg = TinyTrainConfig(Task::kRegression);
  cfg.epochs = 1;
  Trainer trainer(&model, &fx.builder, &fx.dataset, cfg);
  auto result = trainer.Train();
  const size_t expected_steps =
      (fx.dataset.train().size() + cfg.batch_size - 1) / cfg.batch_size;
  EXPECT_EQ(result.epochs[0].steps, expected_steps);
  EXPECT_GT(result.epochs[0].seconds, 0.0);
  EXPECT_NEAR(result.total_seconds, result.epochs[0].seconds, 1e-6);
}

TEST(TrainerTest, NegativeRepeatsMultiplySteps) {
  TrainFixture fx("toys", 0.2);
  SeqFm model(fx.space, TinyModelConfig());
  TrainConfig cfg = TinyTrainConfig(Task::kRanking);
  cfg.epochs = 1;
  cfg.num_negatives = 3;
  Trainer trainer(&model, &fx.builder, &fx.dataset, cfg);
  auto result = trainer.Train();
  const size_t occurrences = fx.dataset.train().size() * 3;
  const size_t expected_steps =
      (occurrences + cfg.batch_size - 1) / cfg.batch_size;
  EXPECT_EQ(result.epochs[0].steps, expected_steps);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  TrainFixture fx("toys", 0.15);
  auto run = [&fx]() {
    SeqFm model(fx.space, TinyModelConfig());
    Trainer trainer(&model, &fx.builder, &fx.dataset,
                    TinyTrainConfig(Task::kRegression));
    return trainer.Train().final_loss;
  };
  EXPECT_EQ(run(), run());
}

TEST(TrainerTest, LossCurveIdenticalAcrossThreadCounts) {
  // The determinism contract of the parallel backbone: for a fixed seed the
  // ENTIRE loss curve is bit-for-bit identical no matter how many threads
  // the pool runs — every kernel chunk owns its output elements and every
  // RNG stream is derived serially before dispatch (util/rng.h SplitN).
  TrainFixture fx("toys", 0.15);
  auto run = [&fx](size_t threads) {
    core::SeqFmConfig mcfg = TinyModelConfig();
    mcfg.keep_prob = 0.8f;  // exercise dropout's per-chunk streams too
    SeqFm model(fx.space, mcfg);
    TrainConfig cfg = TinyTrainConfig(Task::kRanking);
    cfg.epochs = 2;
    cfg.num_threads = threads;  // resizes the process-global pool
    Trainer trainer(&model, &fx.builder, &fx.dataset, cfg);
    auto result = trainer.Train();
    std::vector<double> curve;
    for (const auto& epoch : result.epochs) curve.push_back(epoch.mean_loss);
    return curve;
  };
  const std::vector<double> one_thread = run(1);
  const std::vector<double> four_threads = run(4);
  util::SetGlobalThreads(1);
  ASSERT_EQ(one_thread.size(), four_threads.size());
  for (size_t i = 0; i < one_thread.size(); ++i) {
    EXPECT_EQ(one_thread[i], four_threads[i]) << "epoch " << i;
  }
}

TEST(TrainerTest, WorksWithEveryBaseline) {
  TrainFixture fx("toys", 0.12);
  baselines::BaselineConfig bcfg;
  bcfg.embedding_dim = 8;
  bcfg.max_seq_len = 8;
  bcfg.mlp_hidden = 8;
  bcfg.keep_prob = 1.0f;
  for (const std::string name :
       {"FM", "NFM", "AFM", "Wide&Deep", "DeepCross", "xDeepFM", "DIN",
        "SASRec", "TFM", "RRN", "HOFM"}) {
    auto model = baselines::CreateBaseline(name, fx.space, bcfg);
    ASSERT_TRUE(model.ok()) << name;
    TrainConfig cfg = TinyTrainConfig(Task::kRanking);
    cfg.epochs = 1;
    Trainer trainer(model->get(), &fx.builder, &fx.dataset, cfg);
    auto result = trainer.Train();
    EXPECT_TRUE(std::isfinite(result.final_loss)) << name;
  }
}

}  // namespace
}  // namespace core
}  // namespace seqfm
