// End-to-end integration tests: synthetic data -> leave-one-out split ->
// training with each task head -> evaluation. Assertions are deliberately
// loose (beat chance / beat trivial predictors) so the suite stays robust
// across platforms while still catching pipeline-level regressions.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace seqfm {
namespace {

struct Pipeline {
  explicit Pipeline(const std::string& preset, double scale,
                    size_t max_seq_len = 12)
      : log(data::SyntheticDatasetGenerator(
                data::SyntheticDatasetGenerator::Preset(preset, scale)
                    .ValueOrDie())
                .Generate()
                .ValueOrDie()),
        dataset(data::TemporalDataset::FromLog(log).ValueOrDie()),
        space(log.num_users(), log.num_objects()),
        builder(space, max_seq_len) {}

  core::TrainResult Train(core::Model* model, core::Task task, size_t epochs,
                          size_t negatives = 2) {
    core::TrainConfig cfg;
    cfg.task = task;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.learning_rate = 1e-2f;
    cfg.num_negatives = negatives;
    core::Trainer trainer(model, &builder, &dataset, cfg);
    return trainer.Train();
  }

  data::InteractionLog log;
  data::TemporalDataset dataset;
  data::FeatureSpace space;
  data::BatchBuilder builder;
};

core::SeqFmConfig TinyConfig(size_t max_seq_len = 12) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 12;
  cfg.max_seq_len = max_seq_len;
  cfg.keep_prob = 1.0f;
  return cfg;
}

TEST(IntegrationTest, RankingBeatsChanceByWideMargin) {
  Pipeline p("gowalla", 0.2);
  core::SeqFm model(p.space, TinyConfig());
  p.Train(&model, core::Task::kRanking, 15);
  // J = 100 candidates: a random scorer gets HR@10 ~ 10/101 ~ 0.10.
  eval::RankingEvaluator evaluator(&p.dataset, &p.builder, 100, 5);
  auto metrics = evaluator.Evaluate(&model, {10});
  EXPECT_GT(metrics.hr[10], 0.15) << "should clearly beat the 0.10 chance";
  EXPECT_GT(metrics.ndcg[10], 0.05);
}

TEST(IntegrationTest, ClassificationAucBeatsCoinFlip) {
  Pipeline p("trivago", 0.15);
  core::SeqFm model(p.space, TinyConfig());
  p.Train(&model, core::Task::kClassification, 10);
  eval::ClassificationEvaluator evaluator(&p.dataset, &p.builder, 5);
  auto metrics = evaluator.Evaluate(&model);
  EXPECT_GT(metrics.auc, 0.62);
  EXPECT_LT(metrics.rmse, 0.55);
}

TEST(IntegrationTest, RegressionBeatsGlobalMeanPredictor) {
  Pipeline p("beauty", 0.5);
  core::SeqFmConfig cfg = TinyConfig();
  cfg.keep_prob = 0.8f;  // regularize: tiny datasets overfit quickly
  core::SeqFm model(p.space, cfg);
  // Epoch selection on the validation split (as the benches do): keep the
  // parameters of the epoch with the best validation MAE.
  core::TrainConfig tc;
  tc.task = core::Task::kRegression;
  tc.epochs = 30;
  tc.batch_size = 128;
  tc.learning_rate = 1e-2f;
  tc.validate_every = 3;
  core::Trainer trainer(&model, &p.builder, &p.dataset, tc);
  eval::RegressionEvaluator val(&p.dataset, &p.builder,
                                /*use_validation=*/true);
  trainer.SetValidationScorer(
      [&val, &model]() { return -val.Evaluate(&model).mae; });
  auto result = trainer.Train();
  EXPECT_GT(result.best_epoch, 0u);

  eval::RegressionEvaluator evaluator(&p.dataset, &p.builder);
  auto metrics = evaluator.Evaluate(&model);
  // RRSE of the global-mean predictor is ~1 by definition; learning the
  // user/item/sequence structure must push below it.
  EXPECT_LT(metrics.rrse, 1.0);
  EXPECT_LT(metrics.mae, 0.8);
}

TEST(IntegrationTest, SequenceAwareSeqFmBeatsOrderBlindFmOnPlantedData) {
  // Sequence-heavy generator: most of the next-object mass flows through
  // successor transitions, so an order-blind FM hits a ceiling.
  data::SyntheticConfig cfg;
  cfg.num_users = 120;
  cfg.num_objects = 150;
  cfg.num_clusters = 10;
  cfg.min_seq_len = 15;
  cfg.max_seq_len = 25;
  cfg.w_static = 0.1;
  cfg.w_markov = 0.75;
  cfg.w_long = 0.05;
  cfg.noise = 0.1;
  cfg.markov_window = 2;
  cfg.seed = 77;
  auto log = data::SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  auto dataset = data::TemporalDataset::FromLog(log).ValueOrDie();
  data::FeatureSpace space(log.num_users(), log.num_objects());
  data::BatchBuilder builder(space, 12);

  auto train = [&](core::Model* model) {
    core::TrainConfig tc;
    tc.task = core::Task::kRanking;
    tc.epochs = 30;
    tc.batch_size = 128;
    tc.learning_rate = 1e-2f;
    tc.num_negatives = 2;
    core::Trainer trainer(model, &builder, &dataset, tc);
    trainer.Train();
  };
  core::SeqFm seqfm(space, TinyConfig());
  train(&seqfm);
  baselines::BaselineConfig bcfg;
  bcfg.embedding_dim = 12;
  bcfg.max_seq_len = 12;
  auto fm = baselines::CreateBaseline("FM", space, bcfg).ValueOrDie();
  train(fm.get());

  eval::RankingEvaluator evaluator(&dataset, &builder, 100, 5);
  const double seqfm_ndcg = evaluator.Evaluate(&seqfm, {10}).ndcg[10];
  const double fm_ndcg = evaluator.Evaluate(fm.get(), {10}).ndcg[10];
  EXPECT_GT(seqfm_ndcg, fm_ndcg * 0.75)
      << "SeqFM must at least match the order-blind FM on sequence-heavy "
         "data (SeqFM NDCG@10 = "
      << seqfm_ndcg << ", FM = " << fm_ndcg << ")";
}

TEST(IntegrationTest, AblatedDynamicViewHurtsOnSequenceHeavyData) {
  Pipeline p("gowalla", 0.2);
  core::SeqFmConfig full_cfg = TinyConfig();
  core::SeqFm full(p.space, full_cfg);
  p.Train(&full, core::Task::kRanking, 12);

  core::SeqFmConfig ablated_cfg = TinyConfig();
  ablated_cfg.use_dynamic_view = false;
  ablated_cfg.use_cross_view = false;  // remove all sequence paths
  core::SeqFm ablated(p.space, ablated_cfg);
  p.Train(&ablated, core::Task::kRanking, 12);

  eval::RankingEvaluator evaluator(&p.dataset, &p.builder, 100, 5);
  const double full_hr = evaluator.Evaluate(&full, {20}).hr[20];
  const double ablated_hr = evaluator.Evaluate(&ablated, {20}).hr[20];
  // The fully sequence-blind variant should not outperform the full model
  // by any meaningful margin on sequence-structured data.
  EXPECT_GT(full_hr + 0.05, ablated_hr);
}

}  // namespace
}  // namespace seqfm
