// Lockdown suite for the TCP serving tier (PR 7: src/serve/protocol.* +
// src/serve/rpc_server.*) and the bounded-admission path under it:
//   - wire protocol round-trips and defensive decoding (truncated, padded,
//     wrong-type payloads reject with Status, never half-parse);
//   - FrameReader incremental framing: frames split at every byte offset,
//     coalesced many-per-feed, bad magic / oversized declared lengths poison
//     the stream;
//   - BatchServer bounded admission: deterministic shedding at
//     max_queue_requests (a blocking done-callback pins the dispatcher so
//     queue depth is exact), Submit's future failing on overload;
//   - RpcServer over real sockets: bit-identical rankings vs direct
//     BatchServer::Submit, pipelining, byte-by-byte writes, framing
//     violations failing only the offending connection, client disconnect
//     mid-request, Shutdown draining admitted work while racing clients, and
//     the answered-exactly-once accounting invariant.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

core::SeqFmConfig SmallSeqFmConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};           // single-item history
  examples[2] = {3, 0, 2.0f, {}};            // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

std::vector<int32_t> FullCatalog(const data::FeatureSpace& space) {
  std::vector<int32_t> catalog;
  for (size_t i = 0; i < space.num_objects(); ++i) {
    catalog.push_back(static_cast<int32_t>(i));
  }
  return catalog;
}

void ExpectRankingEq(const std::vector<serve::ScoredItem>& got,
                     const std::vector<serve::ScoredItem>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].item, want[j].item) << context << " rank " << j;
    EXPECT_EQ(std::memcmp(&got[j].score, &want[j].score, sizeof(float)), 0)
        << context << " rank " << j;
  }
}

/// The full serving stack one RPC test needs, constructed bottom-up and
/// destroyed top-down (RpcServer::~ shuts the BatchServer down first).
struct ServingStack {
  explicit ServingStack(serve::BatchServerOptions batch_opts = {},
                        serve::RpcServerOptions rpc_opts = {})
      : builder(space, kSeqLen),
        model(space, SmallSeqFmConfig()),
        predictor(&model, &builder, PredictorOpts()),
        batch(&predictor, batch_opts),
        rpc(&batch, rpc_opts) {}

  static serve::PredictorOptions PredictorOpts() {
    serve::PredictorOptions opts;
    opts.micro_batch = 4;
    opts.context_cache_bytes = 1 << 20;
    return opts;
  }

  data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder;
  core::SeqFm model;
  serve::Predictor predictor;
  serve::BatchServer batch;
  serve::RpcServer rpc;
};

// ---------------------------------------------------------------------------
// Protocol: encoding round-trips
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  serve::RpcRequest req;
  req.id = 0x1122334455667788ull;
  req.user = -7;
  req.k = 10;
  req.history = {1, -1, 3};
  req.slate = {4, 5, 6, 7};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  ASSERT_EQ(wire.size(),
            serve::kRpcFrameHeaderBytes + 1 + 8 + 4 + 4 + 4 + 4 + 12 + 16);

  serve::FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  std::string payload;
  bool got = false;
  ASSERT_TRUE(reader.Next(&payload, &got).ok());
  ASSERT_TRUE(got);
  serve::RpcRequest out;
  ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.user, req.user);
  EXPECT_EQ(out.k, req.k);
  EXPECT_EQ(out.history, req.history);
  EXPECT_EQ(out.slate, req.slate);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ProtocolTest, ResponseRoundTripAllStatuses) {
  for (const serve::RpcStatus status :
       {serve::RpcStatus::kOk, serve::RpcStatus::kOverloaded,
        serve::RpcStatus::kShuttingDown, serve::RpcStatus::kBadRequest}) {
    serve::RpcResponse resp;
    resp.id = 42;
    resp.status = status;
    if (status == serve::RpcStatus::kOk) {
      resp.items = {{3, 1.5f}, {1, -0.25f}};
    }
    std::string wire;
    serve::AppendResponseFrame(resp, &wire);
    serve::FrameReader reader;
    reader.Feed(wire.data(), wire.size());
    std::string payload;
    bool got = false;
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    serve::RpcResponse out;
    ASSERT_TRUE(serve::DecodeResponse(payload, &out).ok());
    EXPECT_EQ(out.id, 42u);
    EXPECT_EQ(out.status, status);
    ASSERT_EQ(out.items.size(), resp.items.size());
    for (size_t i = 0; i < out.items.size(); ++i) {
      EXPECT_EQ(out.items[i].item, resp.items[i].item);
      EXPECT_EQ(std::memcmp(&out.items[i].score, &resp.items[i].score,
                            sizeof(float)),
                0);
    }
  }
}

TEST(ProtocolTest, StatusNamesAreStable) {
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kOk), "OK");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kOverloaded),
               "OVERLOADED");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kShuttingDown),
               "SHUTTING_DOWN");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kBadRequest),
               "BAD_REQUEST");
}

// ---------------------------------------------------------------------------
// Protocol: defensive decoding
// ---------------------------------------------------------------------------

TEST(ProtocolTest, DecodeRejectsWrongTypeAndEmptyPayloads) {
  serve::RpcRequest req;
  serve::RpcResponse resp;
  EXPECT_FALSE(serve::DecodeRequest("", &req).ok());
  EXPECT_FALSE(serve::DecodeResponse("", &resp).ok());
  // A response payload handed to the request decoder (and vice versa).
  std::string wire;
  serve::AppendResponseFrame(serve::RpcResponse{}, &wire);
  const std::string resp_payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(serve::DecodeRequest(resp_payload, &req).ok());
  wire.clear();
  serve::AppendRequestFrame(serve::RpcRequest{}, &wire);
  const std::string req_payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(serve::DecodeResponse(req_payload, &resp).ok());
}

TEST(ProtocolTest, DecodeRejectsTruncatedAndPaddedElementArrays) {
  serve::RpcRequest req;
  req.id = 1;
  req.history = {1, 2, 3};
  req.slate = {4, 5};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  std::string payload = wire.substr(serve::kRpcFrameHeaderBytes);

  serve::RpcRequest out;
  // Truncated: the declared counts exceed the bytes actually present.
  EXPECT_FALSE(
      serve::DecodeRequest(payload.substr(0, payload.size() - 4), &out).ok());
  // Padded: trailing bytes beyond the declared counts mean stream desync.
  EXPECT_FALSE(serve::DecodeRequest(payload + "....", &out).ok());
  // Header alone, counts promising data that never came.
  EXPECT_FALSE(serve::DecodeRequest(payload.substr(0, 25), &out).ok());
  // An absurd declared count must be rejected BEFORE any resize happens.
  std::string huge = payload;
  const uint32_t bogus = 0x7fffffffu;
  std::memcpy(&huge[17], &bogus, sizeof(bogus));  // history_len field
  EXPECT_FALSE(serve::DecodeRequest(huge, &out).ok());

  serve::RpcResponse resp_out;
  serve::RpcResponse resp;
  resp.items = {{1, 1.0f}};
  wire.clear();
  serve::AppendResponseFrame(resp, &wire);
  payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(
      serve::DecodeResponse(payload.substr(0, payload.size() - 1), &resp_out)
          .ok());
  EXPECT_FALSE(serve::DecodeResponse(payload + "x", &resp_out).ok());
  // Unknown status byte.
  std::string bad_status = payload;
  bad_status[9] = 0x7f;
  EXPECT_FALSE(serve::DecodeResponse(bad_status, &resp_out).ok());
}

TEST(FrameReaderTest, ReassemblesFramesSplitAtEveryByte) {
  serve::RpcRequest req;
  req.id = 9;
  req.history = {1, 2};
  req.slate = {3};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  serve::AppendRequestFrame(req, &wire);  // two frames back to back

  serve::FrameReader reader;
  std::string payload;
  bool got = false;
  size_t frames = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    reader.Feed(wire.data() + i, 1);  // one byte at a time
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    if (got) {
      ++frames;
      serve::RpcRequest out;
      ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
      EXPECT_EQ(out.id, 9u);
    }
  }
  EXPECT_EQ(frames, 2u);
}

TEST(FrameReaderTest, YieldsCoalescedFramesOneByOne) {
  std::string wire;
  for (uint64_t id = 0; id < 5; ++id) {
    serve::RpcRequest req;
    req.id = id;
    serve::AppendRequestFrame(req, &wire);
  }
  serve::FrameReader reader;
  reader.Feed(wire.data(), wire.size());  // one read, five frames
  std::string payload;
  bool got = false;
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    serve::RpcRequest out;
    ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
    EXPECT_EQ(out.id, id);
  }
  ASSERT_TRUE(reader.Next(&payload, &got).ok());
  EXPECT_FALSE(got);
}

TEST(FrameReaderTest, BadMagicPoisonsTheStream) {
  serve::FrameReader reader;
  const char garbage[] = "NOPE\x04\x00\x00\x00abcd";
  reader.Feed(garbage, sizeof(garbage) - 1);
  std::string payload;
  bool got = false;
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
  // Poisoned: even a valid frame fed afterwards cannot resync the stream.
  std::string wire;
  serve::AppendRequestFrame(serve::RpcRequest{}, &wire);
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
}

TEST(FrameReaderTest, OversizedDeclaredLengthPoisonsWithoutAllocating) {
  serve::FrameReader reader(/*max_frame_bytes=*/64);
  std::string header;
  const uint32_t magic = serve::kRpcMagic;
  const uint32_t huge = 0xffffffffu;  // ~4 GiB declared; never allocated
  header.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  reader.Feed(header.data(), header.size());
  std::string payload;
  bool got = false;
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
  EXPECT_FALSE(got);
}

TEST(FrameReaderTest, LongLivedStreamReclaimsConsumedPrefix) {
  serve::RpcRequest req;
  req.slate.assign(512, 1);  // ~2 KiB frames
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  serve::FrameReader reader;
  std::string payload;
  bool got = false;
  for (int i = 0; i < 64; ++i) {
    reader.Feed(wire.data(), wire.size());
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    // Everything consumed: the stream buffer must not accumulate history.
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// BatchServer bounded admission (deterministic, no sockets)
// ---------------------------------------------------------------------------

TEST(BoundedAdmissionTest, TrySubmitShedsDeterministicallyAtTheBound) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  const auto ex = TestExamples()[0];
  serve::Predictor predictor(&model, &builder, ServingStack::PredictorOpts());

  serve::BatchServerOptions opts;
  opts.max_wave_requests = 1;
  opts.max_queue_requests = 1;

  // These outlive the server: its destructor re-runs Shutdown after the
  // blocking callback below has already fired.
  std::promise<void> entered, release;
  std::promise<std::vector<serve::ScoredItem>> queued_result;
  {
    serve::BatchServer server(&predictor, opts);
    // Request A blocks the dispatcher inside its done-callback, pinning the
    // server in wave delivery — from here on, queue depth is under exact
    // test control instead of racing the dispatcher.
    ASSERT_EQ(server.TrySubmit(ex, catalog, 2,
                               [&](std::vector<serve::ScoredItem>) {
                                 entered.set_value();
                                 release.get_future().wait();
                               }),
              serve::BatchServer::AdmitResult::kAdmitted);
    entered.get_future().wait();  // dispatcher is now parked; queue is empty

    // B fills the queue to its bound of 1.
    ASSERT_EQ(server.TrySubmit(ex, catalog, 2,
                               [&](std::vector<serve::ScoredItem> items) {
                                 queued_result.set_value(std::move(items));
                               }),
              serve::BatchServer::AdmitResult::kAdmitted);
    // C and D must shed: the queue is provably full right now.
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(server.TrySubmit(ex, catalog, 2,
                                 [](std::vector<serve::ScoredItem>) {
                                   FAIL() << "shed callback must never fire";
                                 }),
                serve::BatchServer::AdmitResult::kOverloaded);
    }
    // Submit() maps the same rejection onto a failed future.
    auto overloaded = server.Submit(ex, catalog, 2);
    EXPECT_THROW(overloaded.get(), std::runtime_error);

    release.set_value();  // unblock A; B drains normally
    EXPECT_EQ(queued_result.get_future().get().size(), 2u);

    const auto stats = server.stats();
    EXPECT_EQ(stats.requests_admitted, 2u);   // A and B
    EXPECT_EQ(stats.requests_rejected, 3u);   // C, D, and the Submit
    server.Shutdown();
    EXPECT_EQ(server.stats().requests_served, 2u);
    // Post-shutdown admission is kShutdown, not kOverloaded, and not counted
    // as a shed.
    EXPECT_EQ(server.TrySubmit(ex, catalog, 2,
                               [](std::vector<serve::ScoredItem>) {}),
              serve::BatchServer::AdmitResult::kShutdown);
    EXPECT_EQ(server.stats().requests_rejected, 3u);
  }
}

TEST(BoundedAdmissionTest, UnboundedQueueNeverSheds) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  serve::Predictor predictor(&model, &builder, ServingStack::PredictorOpts());
  serve::BatchServer server(&predictor, {});  // max_queue_requests = 0
  std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(server.Submit(TestExamples()[i % 4], catalog, 2));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().size(), 2u);
  EXPECT_EQ(server.stats().requests_rejected, 0u);
}

// ---------------------------------------------------------------------------
// RpcServer over real sockets
// ---------------------------------------------------------------------------

TEST(RpcServerTest, StartReportsBadAddressAndDoubleStart) {
  {
    serve::RpcServerOptions opts;
    opts.bind_address = "not-an-address";
    ServingStack stack({}, opts);
    EXPECT_FALSE(stack.rpc.Start().ok());
  }
  {
    ServingStack stack;
    ASSERT_TRUE(stack.rpc.Start().ok());
    EXPECT_FALSE(stack.rpc.Start().ok());
    EXPECT_GT(stack.rpc.port(), 0);
  }
}

TEST(RpcServerTest, ServedTopKBitIdenticalToDirectSubmit) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  uint64_t next_id = 1;
  for (const auto& ex : TestExamples()) {
    for (const size_t k : {1u, 3u, 100u}) {
      serve::RpcRequest req;
      req.id = next_id++;
      req.user = ex.user;
      req.k = static_cast<uint32_t>(k);
      req.history = ex.history;
      req.slate = catalog;
      serve::RpcResponse resp;
      ASSERT_TRUE(client.Call(req, &resp).ok());
      EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
      // The acceptance criterion: the wire adds framing, never arithmetic.
      const auto want = stack.batch.Submit(ex, catalog, k).get();
      ExpectRankingEq(resp.items, want,
                      "user " + std::to_string(ex.user) + " k " +
                          std::to_string(k));
    }
  }
}

TEST(RpcServerTest, EdgeRequestsServeCleanly) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  serve::RpcRequest req;
  req.id = 7;
  req.user = 1;
  req.k = 5;  // empty slate
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_TRUE(resp.items.empty());

  req.id = 8;
  req.k = 0;  // k == 0
  req.slate = {0, 1, 2};
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_TRUE(resp.items.empty());
}

TEST(RpcServerTest, PipelinedRequestsAllAnsweredById) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);
  const auto examples = TestExamples();

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  // Fire a burst without reading anything back, then collect.
  constexpr uint64_t kBurst = 32;
  for (uint64_t id = 0; id < kBurst; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = examples[id % examples.size()].user;
    req.k = 2;
    req.history = examples[id % examples.size()].history;
    req.slate = catalog;
    ASSERT_TRUE(client.Send(req).ok());
  }
  std::vector<bool> seen(kBurst, false);
  for (uint64_t i = 0; i < kBurst; ++i) {
    serve::RpcResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    ASSERT_LT(resp.id, kBurst);
    EXPECT_FALSE(seen[resp.id]) << "response " << resp.id << " repeated";
    seen[resp.id] = true;
    EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
    EXPECT_EQ(resp.items.size(), 2u);
  }
}

TEST(RpcServerTest, RequestsSplitAcrossManyWritesAreReassembled) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  serve::RpcRequest req;
  req.id = 77;
  req.user = 2;
  req.k = 2;
  req.history = {5};
  req.slate = FullCatalog(stack.space);
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  // Dribble the frame across dozens of tiny writes, straddling the header /
  // payload boundary and every element boundary.
  for (size_t i = 0; i < wire.size(); i += 3) {
    const size_t n = std::min<size_t>(3, wire.size() - i);
    ASSERT_EQ(::write(client.fd(), wire.data() + i, n),
              static_cast<ssize_t>(n));
  }
  serve::RpcResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.id, 77u);
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_EQ(resp.items.size(), 2u);
}

TEST(RpcServerTest, GarbageMagicFailsOnlyThatConnection) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());

  serve::RpcClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", stack.rpc.port()).ok());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::write(bad.fd(), garbage, sizeof(garbage) - 1), 0);
  serve::RpcResponse resp;
  EXPECT_FALSE(bad.ReadResponse(&resp).ok());  // server closed us

  // The process and other connections are unaffected.
  serve::RpcClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcRequest req;
  req.id = 1;
  req.user = 0;
  req.k = 1;
  req.slate = {0, 1};
  ASSERT_TRUE(good.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_GE(stack.rpc.stats().protocol_errors, 1u);
}

TEST(RpcServerTest, OversizedDeclaredFrameFailsTheConnection) {
  serve::RpcServerOptions opts;
  opts.max_frame_bytes = 256;
  ServingStack stack({}, opts);
  ASSERT_TRUE(stack.rpc.Start().ok());

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  std::string header;
  const uint32_t magic = serve::kRpcMagic;
  const uint32_t huge = 1u << 30;
  header.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_EQ(::write(client.fd(), header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  serve::RpcResponse resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());
  EXPECT_GE(stack.rpc.stats().protocol_errors, 1u);

  // A frame under the limit still serves on a fresh connection.
  serve::RpcClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcRequest req;
  req.id = 1;
  req.k = 1;
  req.slate = {0};
  ASSERT_TRUE(good.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
}

TEST(RpcServerTest, ClientDisconnectMidRequestDropsOnlyItsResponses) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  {
    serve::RpcClient ghost;
    ASSERT_TRUE(ghost.Connect("127.0.0.1", stack.rpc.port()).ok());
    serve::RpcRequest req;
    req.id = 13;
    req.user = 0;
    req.k = 3;
    req.history = {1, 2};
    req.slate = catalog;
    ASSERT_TRUE(ghost.Send(req).ok());
    ghost.Close();  // gone before the wave completes
  }

  // The orphaned completion must be discarded without tripping anything;
  // the stack keeps serving other clients before and after it drains.
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  for (uint64_t id = 0; id < 8; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = 4;
    req.k = 2;
    req.history = {8, 7, 6};
    req.slate = catalog;
    serve::RpcResponse resp;
    ASSERT_TRUE(client.Call(req, &resp).ok());
    EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
    EXPECT_EQ(resp.items.size(), 2u);
  }
}

TEST(RpcServerTest, BoundedQueueShedsAnswerOverloadedAndAccountingBalances) {
  serve::BatchServerOptions batch_opts;
  batch_opts.max_wave_requests = 1;  // one request per wave: maximum pressure
  batch_opts.max_queue_requests = 1;
  ServingStack stack(batch_opts);
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  // A pipelined burst: the loop thread admits these back-to-back while each
  // wave scores a full catalog, so the depth-1 queue must shed some (the
  // exact count depends on scheduling; the invariant below does not).
  constexpr uint64_t kBurst = 64;
  for (uint64_t id = 0; id < kBurst; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = 0;
    req.k = 2;
    req.history = {1, 2, 3};
    req.slate = catalog;
    ASSERT_TRUE(client.Send(req).ok());
  }
  uint64_t ok = 0, shed = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    serve::RpcResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    if (resp.status == serve::RpcStatus::kOk) {
      ++ok;
      EXPECT_EQ(resp.items.size(), 2u);
    } else {
      ASSERT_EQ(resp.status, serve::RpcStatus::kOverloaded);
      EXPECT_TRUE(resp.items.empty());
      ++shed;
    }
  }
  // Every request answered exactly once — no broken promises, no duplicates.
  EXPECT_EQ(ok + shed, kBurst);
  const auto stats = stack.rpc.stats();
  EXPECT_EQ(stats.requests_ok, ok);
  EXPECT_EQ(stats.requests_shed, shed);
  EXPECT_EQ(stats.frames_received, kBurst);
  EXPECT_EQ(stack.batch.stats().requests_rejected, shed);
}

TEST(RpcServerTest, ShutdownDrainsAdmittedWorkWhileClientsRace) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);
  const uint16_t port = stack.rpc.port();

  std::atomic<uint64_t> ok{0}, rejected{0}, disconnected{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c]() {
      serve::RpcClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++disconnected;
        return;
      }
      while (!go.load()) std::this_thread::yield();
      for (uint64_t id = 0; id < 32; ++id) {
        serve::RpcRequest req;
        req.id = id;
        req.user = static_cast<int32_t>(c);
        req.k = 2;
        req.history = {1, 2};
        req.slate = catalog;
        serve::RpcResponse resp;
        if (!client.Call(req, &resp).ok()) {
          // Shutdown closed the connection: every outcome before this one
          // was still answered exactly once.
          ++disconnected;
          return;
        }
        if (resp.status == serve::RpcStatus::kOk) {
          if (resp.items.size() == 2) ++ok;
        } else {
          ++rejected;  // OVERLOADED or SHUTTING_DOWN, both legitimate
        }
      }
    });
  }
  go.store(true);
  std::this_thread::yield();
  stack.rpc.Shutdown();  // races the in-flight calls; must not hang or crash
  for (auto& t : clients) t.join();

  // No client hung (the join above returned) and nobody got a torn result.
  const auto stats = stack.rpc.stats();
  EXPECT_EQ(stats.requests_ok + stats.requests_shed +
                stats.requests_rejected_shutdown,
            stats.frames_received)
      << "every decoded request must be answered exactly once";
  EXPECT_EQ(stack.rpc.open_connections(), 0u);
  // Idempotent: a second Shutdown (and the destructor's) is a no-op.
  stack.rpc.Shutdown();
}

TEST(RpcServerTest, ShutdownWithIdleConnectionsCompletesImmediately) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient idle1, idle2;
  ASSERT_TRUE(idle1.Connect("127.0.0.1", stack.rpc.port()).ok());
  ASSERT_TRUE(idle2.Connect("127.0.0.1", stack.rpc.port()).ok());
  // Idle connections have nothing to drain; Shutdown must not wait for the
  // drain deadline on them.
  stack.rpc.Shutdown();
  EXPECT_EQ(stack.rpc.open_connections(), 0u);
  serve::RpcResponse resp;
  EXPECT_FALSE(idle1.ReadResponse(&resp).ok());
}

}  // namespace
}  // namespace seqfm
