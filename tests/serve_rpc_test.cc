// Lockdown suite for the TCP serving tier (PR 7: src/serve/protocol.* +
// src/serve/rpc_server.*) and the bounded-admission path under it:
//   - wire protocol round-trips and defensive decoding (truncated, padded,
//     wrong-type payloads reject with Status, never half-parse);
//   - FrameReader incremental framing: frames split at every byte offset,
//     coalesced many-per-feed, bad magic / oversized declared lengths poison
//     the stream;
//   - BatchServer bounded admission: deterministic shedding at
//     max_queue_requests (a blocking done-callback pins the dispatcher so
//     queue depth is exact), Submit's future failing on overload;
//   - RpcServer over real sockets: bit-identical rankings vs direct
//     BatchServer::Submit, pipelining, byte-by-byte writes, framing
//     violations failing only the offending connection, client disconnect
//     mid-request, Shutdown draining admitted work while racing clients, and
//     the answered-exactly-once accounting invariant;
//   - protocol v2 (PR 9): the mandatory HELLO handshake with precise
//     version-mismatch errors in BOTH directions (old client vs new server,
//     new client vs pre-v2 server), client connect/call timeouts against
//     hung servers, and replica-mode shard-scoped scoring.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

core::SeqFmConfig SmallSeqFmConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};           // single-item history
  examples[2] = {3, 0, 2.0f, {}};            // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

std::vector<int32_t> FullCatalog(const data::FeatureSpace& space) {
  std::vector<int32_t> catalog;
  for (size_t i = 0; i < space.num_objects(); ++i) {
    catalog.push_back(static_cast<int32_t>(i));
  }
  return catalog;
}

void ExpectRankingEq(const std::vector<serve::ScoredItem>& got,
                     const std::vector<serve::ScoredItem>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].item, want[j].item) << context << " rank " << j;
    EXPECT_EQ(std::memcmp(&got[j].score, &want[j].score, sizeof(float)), 0)
        << context << " rank " << j;
  }
}

/// The full serving stack one RPC test needs, constructed bottom-up and
/// destroyed top-down (RpcServer::~ shuts the BatchServer down first).
struct ServingStack {
  explicit ServingStack(serve::BatchServerOptions batch_opts = {},
                        serve::RpcServerOptions rpc_opts = {})
      : builder(space, kSeqLen),
        model(space, SmallSeqFmConfig()),
        predictor(&model, &builder, PredictorOpts()),
        batch(&predictor, batch_opts),
        rpc(&batch, rpc_opts) {}

  static serve::PredictorOptions PredictorOpts() {
    serve::PredictorOptions opts;
    opts.micro_batch = 4;
    opts.context_cache_bytes = 1 << 20;
    return opts;
  }

  data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder;
  core::SeqFm model;
  serve::Predictor predictor;
  serve::BatchServer batch;
  serve::RpcServer rpc;
};

// ---------------------------------------------------------------------------
// Protocol: encoding round-trips
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  serve::RpcRequest req;
  req.id = 0x1122334455667788ull;
  req.user = -7;
  req.k = 10;
  req.history = {1, -1, 3};
  req.slate = {4, 5, 6, 7};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  ASSERT_EQ(wire.size(),
            serve::kRpcFrameHeaderBytes + 1 + 8 + 4 + 4 + 4 + 4 + 12 + 16);

  serve::FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  std::string payload;
  bool got = false;
  ASSERT_TRUE(reader.Next(&payload, &got).ok());
  ASSERT_TRUE(got);
  serve::RpcRequest out;
  ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.user, req.user);
  EXPECT_EQ(out.k, req.k);
  EXPECT_EQ(out.history, req.history);
  EXPECT_EQ(out.slate, req.slate);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ProtocolTest, ResponseRoundTripAllStatuses) {
  for (const serve::RpcStatus status :
       {serve::RpcStatus::kOk, serve::RpcStatus::kOverloaded,
        serve::RpcStatus::kShuttingDown, serve::RpcStatus::kBadRequest,
        serve::RpcStatus::kPartial}) {
    serve::RpcResponse resp;
    resp.id = 42;
    resp.status = status;
    if (status == serve::RpcStatus::kOk) {
      resp.items = {{3, 1.5f}, {1, -0.25f}};
    }
    std::string wire;
    serve::AppendResponseFrame(resp, &wire);
    serve::FrameReader reader;
    reader.Feed(wire.data(), wire.size());
    std::string payload;
    bool got = false;
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    serve::RpcResponse out;
    ASSERT_TRUE(serve::DecodeResponse(payload, &out).ok());
    EXPECT_EQ(out.id, 42u);
    EXPECT_EQ(out.status, status);
    ASSERT_EQ(out.items.size(), resp.items.size());
    for (size_t i = 0; i < out.items.size(); ++i) {
      EXPECT_EQ(out.items[i].item, resp.items[i].item);
      EXPECT_EQ(std::memcmp(&out.items[i].score, &resp.items[i].score,
                            sizeof(float)),
                0);
    }
  }
}

TEST(ProtocolTest, StatusNamesAreStable) {
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kOk), "OK");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kOverloaded),
               "OVERLOADED");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kShuttingDown),
               "SHUTTING_DOWN");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kBadRequest),
               "BAD_REQUEST");
  EXPECT_STREQ(serve::RpcStatusToString(serve::RpcStatus::kPartial),
               "PARTIAL");
}

// ---------------------------------------------------------------------------
// Protocol: defensive decoding
// ---------------------------------------------------------------------------

TEST(ProtocolTest, DecodeRejectsWrongTypeAndEmptyPayloads) {
  serve::RpcRequest req;
  serve::RpcResponse resp;
  EXPECT_FALSE(serve::DecodeRequest("", &req).ok());
  EXPECT_FALSE(serve::DecodeResponse("", &resp).ok());
  // A response payload handed to the request decoder (and vice versa).
  std::string wire;
  serve::AppendResponseFrame(serve::RpcResponse{}, &wire);
  const std::string resp_payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(serve::DecodeRequest(resp_payload, &req).ok());
  wire.clear();
  serve::AppendRequestFrame(serve::RpcRequest{}, &wire);
  const std::string req_payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(serve::DecodeResponse(req_payload, &resp).ok());
}

TEST(ProtocolTest, DecodeRejectsTruncatedAndPaddedElementArrays) {
  serve::RpcRequest req;
  req.id = 1;
  req.history = {1, 2, 3};
  req.slate = {4, 5};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  std::string payload = wire.substr(serve::kRpcFrameHeaderBytes);

  serve::RpcRequest out;
  // Truncated: the declared counts exceed the bytes actually present.
  EXPECT_FALSE(
      serve::DecodeRequest(payload.substr(0, payload.size() - 4), &out).ok());
  // Padded: trailing bytes beyond the declared counts mean stream desync.
  EXPECT_FALSE(serve::DecodeRequest(payload + "....", &out).ok());
  // Header alone, counts promising data that never came.
  EXPECT_FALSE(serve::DecodeRequest(payload.substr(0, 25), &out).ok());
  // An absurd declared count must be rejected BEFORE any resize happens.
  std::string huge = payload;
  const uint32_t bogus = 0x7fffffffu;
  std::memcpy(&huge[17], &bogus, sizeof(bogus));  // history_len field
  EXPECT_FALSE(serve::DecodeRequest(huge, &out).ok());

  serve::RpcResponse resp_out;
  serve::RpcResponse resp;
  resp.items = {{1, 1.0f}};
  wire.clear();
  serve::AppendResponseFrame(resp, &wire);
  payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(
      serve::DecodeResponse(payload.substr(0, payload.size() - 1), &resp_out)
          .ok());
  EXPECT_FALSE(serve::DecodeResponse(payload + "x", &resp_out).ok());
  // Unknown status byte.
  std::string bad_status = payload;
  bad_status[9] = 0x7f;
  EXPECT_FALSE(serve::DecodeResponse(bad_status, &resp_out).ok());
}

TEST(FrameReaderTest, ReassemblesFramesSplitAtEveryByte) {
  serve::RpcRequest req;
  req.id = 9;
  req.history = {1, 2};
  req.slate = {3};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  serve::AppendRequestFrame(req, &wire);  // two frames back to back

  serve::FrameReader reader;
  std::string payload;
  bool got = false;
  size_t frames = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    reader.Feed(wire.data() + i, 1);  // one byte at a time
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    if (got) {
      ++frames;
      serve::RpcRequest out;
      ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
      EXPECT_EQ(out.id, 9u);
    }
  }
  EXPECT_EQ(frames, 2u);
}

TEST(FrameReaderTest, YieldsCoalescedFramesOneByOne) {
  std::string wire;
  for (uint64_t id = 0; id < 5; ++id) {
    serve::RpcRequest req;
    req.id = id;
    serve::AppendRequestFrame(req, &wire);
  }
  serve::FrameReader reader;
  reader.Feed(wire.data(), wire.size());  // one read, five frames
  std::string payload;
  bool got = false;
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    serve::RpcRequest out;
    ASSERT_TRUE(serve::DecodeRequest(payload, &out).ok());
    EXPECT_EQ(out.id, id);
  }
  ASSERT_TRUE(reader.Next(&payload, &got).ok());
  EXPECT_FALSE(got);
}

TEST(FrameReaderTest, BadMagicPoisonsTheStream) {
  serve::FrameReader reader;
  const char garbage[] = "NOPE\x04\x00\x00\x00abcd";
  reader.Feed(garbage, sizeof(garbage) - 1);
  std::string payload;
  bool got = false;
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
  // Poisoned: even a valid frame fed afterwards cannot resync the stream.
  std::string wire;
  serve::AppendRequestFrame(serve::RpcRequest{}, &wire);
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
}

TEST(FrameReaderTest, OversizedDeclaredLengthPoisonsWithoutAllocating) {
  serve::FrameReader reader(/*max_frame_bytes=*/64);
  std::string header;
  const uint32_t magic = serve::kRpcMagic;
  const uint32_t huge = 0xffffffffu;  // ~4 GiB declared; never allocated
  header.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  reader.Feed(header.data(), header.size());
  std::string payload;
  bool got = false;
  EXPECT_FALSE(reader.Next(&payload, &got).ok());
  EXPECT_FALSE(got);
}

TEST(FrameReaderTest, LongLivedStreamReclaimsConsumedPrefix) {
  serve::RpcRequest req;
  req.slate.assign(512, 1);  // ~2 KiB frames
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  serve::FrameReader reader;
  std::string payload;
  bool got = false;
  for (int i = 0; i < 64; ++i) {
    reader.Feed(wire.data(), wire.size());
    ASSERT_TRUE(reader.Next(&payload, &got).ok());
    ASSERT_TRUE(got);
    // Everything consumed: the stream buffer must not accumulate history.
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// BatchServer bounded admission (deterministic, no sockets)
// ---------------------------------------------------------------------------

TEST(BoundedAdmissionTest, TrySubmitShedsDeterministicallyAtTheBound) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  const auto ex = TestExamples()[0];
  serve::Predictor predictor(&model, &builder, ServingStack::PredictorOpts());

  serve::BatchServerOptions opts;
  opts.max_wave_requests = 1;
  opts.max_queue_requests = 1;

  // These outlive the server: its destructor re-runs Shutdown after the
  // blocking callback below has already fired.
  std::promise<void> entered, release;
  std::promise<std::vector<serve::ScoredItem>> queued_result;
  {
    serve::BatchServer server(&predictor, opts);
    // Request A blocks the dispatcher inside its done-callback, pinning the
    // server in wave delivery — from here on, queue depth is under exact
    // test control instead of racing the dispatcher.
    ASSERT_EQ(server.TrySubmit(ex, catalog, 2,
                               [&](std::vector<serve::ScoredItem>) {
                                 entered.set_value();
                                 release.get_future().wait();
                               }),
              serve::BatchServer::AdmitResult::kAdmitted);
    entered.get_future().wait();  // dispatcher is now parked; queue is empty

    // B fills the queue to its bound of 1.
    ASSERT_EQ(server.TrySubmit(ex, catalog, 2,
                               [&](std::vector<serve::ScoredItem> items) {
                                 queued_result.set_value(std::move(items));
                               }),
              serve::BatchServer::AdmitResult::kAdmitted);
    // C and D must shed: the queue is provably full right now.
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(server.TrySubmit(ex, catalog, 2,
                                 [](std::vector<serve::ScoredItem>) {
                                   FAIL() << "shed callback must never fire";
                                 }),
                serve::BatchServer::AdmitResult::kOverloaded);
    }
    // Submit() maps the same rejection onto a failed future.
    auto overloaded = server.Submit(ex, catalog, 2);
    EXPECT_THROW(overloaded.get(), std::runtime_error);

    release.set_value();  // unblock A; B drains normally
    EXPECT_EQ(queued_result.get_future().get().size(), 2u);

    const auto stats = server.stats();
    EXPECT_EQ(stats.requests_admitted, 2u);   // A and B
    EXPECT_EQ(stats.requests_rejected, 3u);   // C, D, and the Submit
    server.Shutdown();
    EXPECT_EQ(server.stats().requests_served, 2u);
    // Post-shutdown admission is kShutdown, not kOverloaded, and not counted
    // as a shed.
    EXPECT_EQ(server.TrySubmit(ex, catalog, 2,
                               [](std::vector<serve::ScoredItem>) {}),
              serve::BatchServer::AdmitResult::kShutdown);
    EXPECT_EQ(server.stats().requests_rejected, 3u);
  }
}

TEST(BoundedAdmissionTest, UnboundedQueueNeverSheds) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  serve::Predictor predictor(&model, &builder, ServingStack::PredictorOpts());
  serve::BatchServer server(&predictor, {});  // max_queue_requests = 0
  std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(server.Submit(TestExamples()[i % 4], catalog, 2));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().size(), 2u);
  EXPECT_EQ(server.stats().requests_rejected, 0u);
}

// ---------------------------------------------------------------------------
// RpcServer over real sockets
// ---------------------------------------------------------------------------

TEST(RpcServerTest, StartReportsBadAddressAndDoubleStart) {
  {
    serve::RpcServerOptions opts;
    opts.bind_address = "not-an-address";
    ServingStack stack({}, opts);
    EXPECT_FALSE(stack.rpc.Start().ok());
  }
  {
    ServingStack stack;
    ASSERT_TRUE(stack.rpc.Start().ok());
    EXPECT_FALSE(stack.rpc.Start().ok());
    EXPECT_GT(stack.rpc.port(), 0);
  }
}

TEST(RpcServerTest, ServedTopKBitIdenticalToDirectSubmit) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  uint64_t next_id = 1;
  for (const auto& ex : TestExamples()) {
    for (const size_t k : {1u, 3u, 100u}) {
      serve::RpcRequest req;
      req.id = next_id++;
      req.user = ex.user;
      req.k = static_cast<uint32_t>(k);
      req.history = ex.history;
      req.slate = catalog;
      serve::RpcResponse resp;
      ASSERT_TRUE(client.Call(req, &resp).ok());
      EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
      // The acceptance criterion: the wire adds framing, never arithmetic.
      const auto want = stack.batch.Submit(ex, catalog, k).get();
      ExpectRankingEq(resp.items, want,
                      "user " + std::to_string(ex.user) + " k " +
                          std::to_string(k));
    }
  }
}

TEST(RpcServerTest, EdgeRequestsServeCleanly) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  serve::RpcRequest req;
  req.id = 7;
  req.user = 1;
  req.k = 5;  // empty slate
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_TRUE(resp.items.empty());

  req.id = 8;
  req.k = 0;  // k == 0
  req.slate = {0, 1, 2};
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_TRUE(resp.items.empty());
}

TEST(RpcServerTest, PipelinedRequestsAllAnsweredById) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);
  const auto examples = TestExamples();

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  // Fire a burst without reading anything back, then collect.
  constexpr uint64_t kBurst = 32;
  for (uint64_t id = 0; id < kBurst; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = examples[id % examples.size()].user;
    req.k = 2;
    req.history = examples[id % examples.size()].history;
    req.slate = catalog;
    ASSERT_TRUE(client.Send(req).ok());
  }
  std::vector<bool> seen(kBurst, false);
  for (uint64_t i = 0; i < kBurst; ++i) {
    serve::RpcResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    ASSERT_LT(resp.id, kBurst);
    EXPECT_FALSE(seen[resp.id]) << "response " << resp.id << " repeated";
    seen[resp.id] = true;
    EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
    EXPECT_EQ(resp.items.size(), 2u);
  }
}

TEST(RpcServerTest, RequestsSplitAcrossManyWritesAreReassembled) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  serve::RpcRequest req;
  req.id = 77;
  req.user = 2;
  req.k = 2;
  req.history = {5};
  req.slate = FullCatalog(stack.space);
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  // Dribble the frame across dozens of tiny writes, straddling the header /
  // payload boundary and every element boundary.
  for (size_t i = 0; i < wire.size(); i += 3) {
    const size_t n = std::min<size_t>(3, wire.size() - i);
    ASSERT_EQ(::write(client.fd(), wire.data() + i, n),
              static_cast<ssize_t>(n));
  }
  serve::RpcResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.id, 77u);
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_EQ(resp.items.size(), 2u);
}

TEST(RpcServerTest, GarbageMagicFailsOnlyThatConnection) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());

  serve::RpcClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", stack.rpc.port()).ok());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::write(bad.fd(), garbage, sizeof(garbage) - 1), 0);
  serve::RpcResponse resp;
  EXPECT_FALSE(bad.ReadResponse(&resp).ok());  // server closed us

  // The process and other connections are unaffected.
  serve::RpcClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcRequest req;
  req.id = 1;
  req.user = 0;
  req.k = 1;
  req.slate = {0, 1};
  ASSERT_TRUE(good.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  EXPECT_GE(stack.rpc.stats().protocol_errors, 1u);
}

TEST(RpcServerTest, OversizedDeclaredFrameFailsTheConnection) {
  serve::RpcServerOptions opts;
  opts.max_frame_bytes = 256;
  ServingStack stack({}, opts);
  ASSERT_TRUE(stack.rpc.Start().ok());

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  std::string header;
  const uint32_t magic = serve::kRpcMagic;
  const uint32_t huge = 1u << 30;
  header.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_EQ(::write(client.fd(), header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  serve::RpcResponse resp;
  EXPECT_FALSE(client.ReadResponse(&resp).ok());
  EXPECT_GE(stack.rpc.stats().protocol_errors, 1u);

  // A frame under the limit still serves on a fresh connection.
  serve::RpcClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcRequest req;
  req.id = 1;
  req.k = 1;
  req.slate = {0};
  ASSERT_TRUE(good.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
}

TEST(RpcServerTest, ClientDisconnectMidRequestDropsOnlyItsResponses) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  {
    serve::RpcClient ghost;
    ASSERT_TRUE(ghost.Connect("127.0.0.1", stack.rpc.port()).ok());
    serve::RpcRequest req;
    req.id = 13;
    req.user = 0;
    req.k = 3;
    req.history = {1, 2};
    req.slate = catalog;
    ASSERT_TRUE(ghost.Send(req).ok());
    ghost.Close();  // gone before the wave completes
  }

  // The orphaned completion must be discarded without tripping anything;
  // the stack keeps serving other clients before and after it drains.
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  for (uint64_t id = 0; id < 8; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = 4;
    req.k = 2;
    req.history = {8, 7, 6};
    req.slate = catalog;
    serve::RpcResponse resp;
    ASSERT_TRUE(client.Call(req, &resp).ok());
    EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
    EXPECT_EQ(resp.items.size(), 2u);
  }
}

TEST(RpcServerTest, BoundedQueueShedsAnswerOverloadedAndAccountingBalances) {
  serve::BatchServerOptions batch_opts;
  batch_opts.max_wave_requests = 1;  // one request per wave: maximum pressure
  batch_opts.max_queue_requests = 1;
  ServingStack stack(batch_opts);
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);

  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  // A pipelined burst: the loop thread admits these back-to-back while each
  // wave scores a full catalog, so the depth-1 queue must shed some (the
  // exact count depends on scheduling; the invariant below does not).
  constexpr uint64_t kBurst = 64;
  for (uint64_t id = 0; id < kBurst; ++id) {
    serve::RpcRequest req;
    req.id = id;
    req.user = 0;
    req.k = 2;
    req.history = {1, 2, 3};
    req.slate = catalog;
    ASSERT_TRUE(client.Send(req).ok());
  }
  uint64_t ok = 0, shed = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    serve::RpcResponse resp;
    ASSERT_TRUE(client.ReadResponse(&resp).ok());
    if (resp.status == serve::RpcStatus::kOk) {
      ++ok;
      EXPECT_EQ(resp.items.size(), 2u);
    } else {
      ASSERT_EQ(resp.status, serve::RpcStatus::kOverloaded);
      EXPECT_TRUE(resp.items.empty());
      ++shed;
    }
  }
  // Every request answered exactly once — no broken promises, no duplicates.
  EXPECT_EQ(ok + shed, kBurst);
  const auto stats = stack.rpc.stats();
  EXPECT_EQ(stats.requests_ok, ok);
  EXPECT_EQ(stats.requests_shed, shed);
  EXPECT_EQ(stats.frames_received, kBurst);
  EXPECT_EQ(stack.batch.stats().requests_rejected, shed);
}

TEST(RpcServerTest, ShutdownDrainsAdmittedWorkWhileClientsRace) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const auto catalog = FullCatalog(stack.space);
  const uint16_t port = stack.rpc.port();

  std::atomic<uint64_t> ok{0}, rejected{0}, disconnected{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c]() {
      serve::RpcClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++disconnected;
        return;
      }
      while (!go.load()) std::this_thread::yield();
      for (uint64_t id = 0; id < 32; ++id) {
        serve::RpcRequest req;
        req.id = id;
        req.user = static_cast<int32_t>(c);
        req.k = 2;
        req.history = {1, 2};
        req.slate = catalog;
        serve::RpcResponse resp;
        if (!client.Call(req, &resp).ok()) {
          // Shutdown closed the connection: every outcome before this one
          // was still answered exactly once.
          ++disconnected;
          return;
        }
        if (resp.status == serve::RpcStatus::kOk) {
          if (resp.items.size() == 2) ++ok;
        } else {
          ++rejected;  // OVERLOADED or SHUTTING_DOWN, both legitimate
        }
      }
    });
  }
  go.store(true);
  std::this_thread::yield();
  stack.rpc.Shutdown();  // races the in-flight calls; must not hang or crash
  for (auto& t : clients) t.join();

  // No client hung (the join above returned) and nobody got a torn result.
  const auto stats = stack.rpc.stats();
  EXPECT_EQ(stats.requests_ok + stats.requests_shed +
                stats.requests_rejected_shutdown,
            stats.frames_received)
      << "every decoded request must be answered exactly once";
  EXPECT_EQ(stack.rpc.open_connections(), 0u);
  // Idempotent: a second Shutdown (and the destructor's) is a no-op.
  stack.rpc.Shutdown();
}

// ---------------------------------------------------------------------------
// Protocol v2: handshake frames and shard frames
// ---------------------------------------------------------------------------

/// Connects a plain blocking TCP socket with NO handshake — how a protocol
/// v1 (or hand-rolled) client reaches the server. Returns -1 on failure.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking read of exactly one frame payload from a raw fd.
bool ReadFrameFrom(int fd, std::string* payload) {
  serve::FrameReader reader;
  char buf[4096];
  for (;;) {
    bool got = false;
    if (!reader.Next(payload, &got).ok()) return false;
    if (got) return true;
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) return false;
    reader.Feed(buf, static_cast<size_t>(r));
  }
}

bool WriteAll(int fd, const std::string& wire) {
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

TEST(HandshakeProtocolTest, HelloAndAckRoundTrip) {
  serve::RpcHello hello;
  hello.protocol_version = 7;
  hello.capabilities = 0xa5a5u;
  std::string wire;
  serve::AppendHelloFrame(hello, &wire);
  serve::RpcHello hello_out;
  ASSERT_TRUE(
      serve::DecodeHello(wire.substr(serve::kRpcFrameHeaderBytes), &hello_out)
          .ok());
  EXPECT_EQ(hello_out.protocol_version, 7u);
  EXPECT_EQ(hello_out.capabilities, 0xa5a5u);

  serve::RpcHelloAck ack;
  ack.status = serve::RpcStatus::kBadRequest;
  ack.protocol_version = 2;
  ack.capabilities = serve::kRpcCapShardScoring;
  ack.model_version = 0xdeadbeefcafeull;
  ack.shard_index = 1;
  ack.num_shards = 3;
  ack.shard_begin = 100;
  ack.shard_end = 200;
  ack.catalog_size = 300;
  ack.message = "nope";
  wire.clear();
  serve::AppendHelloAckFrame(ack, &wire);
  serve::RpcHelloAck ack_out;
  ASSERT_TRUE(serve::DecodeHelloAck(wire.substr(serve::kRpcFrameHeaderBytes),
                                    &ack_out)
                  .ok());
  EXPECT_EQ(ack_out.status, serve::RpcStatus::kBadRequest);
  EXPECT_EQ(ack_out.protocol_version, 2u);
  EXPECT_EQ(ack_out.capabilities, serve::kRpcCapShardScoring);
  EXPECT_EQ(ack_out.model_version, 0xdeadbeefcafeull);
  EXPECT_EQ(ack_out.shard_index, 1u);
  EXPECT_EQ(ack_out.num_shards, 3u);
  EXPECT_EQ(ack_out.shard_begin, 100u);
  EXPECT_EQ(ack_out.shard_end, 200u);
  EXPECT_EQ(ack_out.catalog_size, 300u);
  EXPECT_EQ(ack_out.message, "nope");
}

TEST(HandshakeProtocolTest, ShardFramesRoundTripWithRawScores) {
  serve::RpcShardRequest req;
  req.id = 11;
  req.user = -3;
  req.k = 5;
  req.begin = 40;
  req.end = 90;
  req.history = {4, 5, 6};
  std::string wire;
  serve::AppendShardRequestFrame(req, &wire);
  serve::RpcShardRequest req_out;
  ASSERT_TRUE(serve::DecodeShardRequest(
                  wire.substr(serve::kRpcFrameHeaderBytes), &req_out)
                  .ok());
  EXPECT_EQ(req_out.id, 11u);
  EXPECT_EQ(req_out.user, -3);
  EXPECT_EQ(req_out.k, 5u);
  EXPECT_EQ(req_out.begin, 40u);
  EXPECT_EQ(req_out.end, 90u);
  EXPECT_EQ(req_out.history, req.history);

  serve::RpcShardResponse resp;
  resp.id = 11;
  resp.status = serve::RpcStatus::kOk;
  resp.model_version = 77;
  // A NaN and a negative zero: the wire must carry score BITS verbatim,
  // because the coordinator's merge re-runs RankBefore on them.
  float nan_score = std::numeric_limits<float>::quiet_NaN();
  resp.entries = {{42, 1.5f, 42}, {7, -0.0f, 7}, {3, nan_score, 3}};
  wire.clear();
  serve::AppendShardResponseFrame(resp, &wire);
  serve::RpcShardResponse resp_out;
  ASSERT_TRUE(serve::DecodeShardResponse(
                  wire.substr(serve::kRpcFrameHeaderBytes), &resp_out)
                  .ok());
  EXPECT_EQ(resp_out.id, 11u);
  EXPECT_EQ(resp_out.model_version, 77u);
  ASSERT_EQ(resp_out.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resp_out.entries[i].item, resp.entries[i].item);
    EXPECT_EQ(resp_out.entries[i].pos, resp.entries[i].pos);
    EXPECT_EQ(std::memcmp(&resp_out.entries[i].score,
                          &resp.entries[i].score, sizeof(float)),
              0);
  }
}

TEST(HandshakeProtocolTest, DecodeRejectsMalformedV2Frames) {
  serve::RpcHello hello;
  serve::RpcHelloAck ack;
  serve::RpcShardRequest sreq;
  serve::RpcShardResponse sresp;
  EXPECT_FALSE(serve::DecodeHello("", &hello).ok());
  EXPECT_FALSE(serve::DecodeHelloAck("", &ack).ok());
  EXPECT_FALSE(serve::DecodeShardRequest("", &sreq).ok());
  EXPECT_FALSE(serve::DecodeShardResponse("", &sresp).ok());

  std::string wire;
  serve::AppendHelloFrame(serve::RpcHello{}, &wire);
  std::string payload = wire.substr(serve::kRpcFrameHeaderBytes);
  // Wrong decoder for the type byte.
  EXPECT_FALSE(serve::DecodeHelloAck(payload, &ack).ok());
  // Truncated and padded.
  EXPECT_FALSE(
      serve::DecodeHello(payload.substr(0, payload.size() - 1), &hello).ok());
  EXPECT_FALSE(serve::DecodeHello(payload + "x", &hello).ok());

  serve::RpcShardResponse good;
  good.entries = {{1, 1.0f, 1}};
  wire.clear();
  serve::AppendShardResponseFrame(good, &wire);
  payload = wire.substr(serve::kRpcFrameHeaderBytes);
  EXPECT_FALSE(
      serve::DecodeShardResponse(payload.substr(0, payload.size() - 1), &sresp)
          .ok());
  EXPECT_FALSE(serve::DecodeShardResponse(payload + "x", &sresp).ok());
  std::string bad_status = payload;
  bad_status[9] = 0x7f;  // status byte after type + id
  EXPECT_FALSE(serve::DecodeShardResponse(bad_status, &sresp).ok());
}

// ---------------------------------------------------------------------------
// Protocol v2: version handshake against a live server (satellite: precise
// mismatch errors in both directions)
// ---------------------------------------------------------------------------

TEST(HandshakeTest, OldClientSendingRequestFirstGetsPreciseVersionError) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const int fd = RawConnect(stack.rpc.port());
  ASSERT_GE(fd, 0);
  // A v1 client has no HELLO: its first frame is a request.
  serve::RpcRequest req;
  req.id = 1;
  req.k = 1;
  req.slate = {0, 1};
  std::string wire;
  serve::AppendRequestFrame(req, &wire);
  ASSERT_TRUE(WriteAll(fd, wire));
  std::string payload;
  ASSERT_TRUE(ReadFrameFrom(fd, &payload));
  serve::RpcHelloAck ack;
  ASSERT_TRUE(serve::DecodeHelloAck(payload, &ack).ok());
  EXPECT_EQ(ack.status, serve::RpcStatus::kBadRequest);
  // The error must NAME the problem: the client's generation and the
  // server's version, not a generic decode failure.
  EXPECT_NE(ack.message.find("protocol v1"), std::string::npos)
      << ack.message;
  EXPECT_NE(ack.message.find("HELLO"), std::string::npos) << ack.message;
  // ... then the server closes the connection.
  char c;
  EXPECT_EQ(::read(fd, &c, 1), 0);
  ::close(fd);
  EXPECT_GE(stack.rpc.stats().protocol_errors, 1u);
  EXPECT_EQ(stack.rpc.stats().frames_received, 0u)
      << "a rejected handshake is not request traffic";
}

TEST(HandshakeTest, FutureClientVersionMismatchNamesBothVersions) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  const int fd = RawConnect(stack.rpc.port());
  ASSERT_GE(fd, 0);
  serve::RpcHello hello;
  hello.protocol_version = 99;
  std::string wire;
  serve::AppendHelloFrame(hello, &wire);
  ASSERT_TRUE(WriteAll(fd, wire));
  std::string payload;
  ASSERT_TRUE(ReadFrameFrom(fd, &payload));
  serve::RpcHelloAck ack;
  ASSERT_TRUE(serve::DecodeHelloAck(payload, &ack).ok());
  EXPECT_EQ(ack.status, serve::RpcStatus::kBadRequest);
  EXPECT_NE(ack.message.find("v99"), std::string::npos) << ack.message;
  EXPECT_NE(ack.message.find(
                "v" + std::to_string(serve::kRpcProtocolVersion)),
            std::string::npos)
      << ack.message;
  char c;
  EXPECT_EQ(::read(fd, &c, 1), 0);
  ::close(fd);
}

TEST(HandshakeTest, NewClientAgainstPreV2ServerFailsPrecisely) {
  // A pre-v2 server cannot decode a HELLO; it closes the connection without
  // ever answering. Emulate one: accept, read a bit, close.
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const uint16_t port = ntohs(addr.sin_port);
  std::thread v1_server([listener]() {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) {
      char buf[64];
      [[maybe_unused]] ssize_t r = ::read(fd, buf, sizeof(buf));
      ::close(fd);  // "protocol error" close, no ack — the v1 behavior
    }
  });
  serve::RpcClient client;
  const Status st = client.Connect("127.0.0.1", port);
  v1_server.join();
  ::close(listener);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("HELLO_ACK"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("protocol v1"), std::string::npos)
      << st.ToString();
}

TEST(HandshakeTest, AcceptedHandshakeExposesServerInfo) {
  serve::RpcServerOptions opts;
  opts.catalog_size = 9;
  opts.num_shards = 3;
  opts.shard_index = 1;
  opts.model_version = 42;
  ServingStack stack({}, opts);
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  const serve::RpcHelloAck& info = client.server_info();
  EXPECT_EQ(info.protocol_version, serve::kRpcProtocolVersion);
  EXPECT_TRUE(info.capabilities & serve::kRpcCapShardScoring);
  EXPECT_EQ(info.model_version, 42u);
  EXPECT_EQ(info.shard_index, 1u);
  EXPECT_EQ(info.num_shards, 3u);
  EXPECT_EQ(info.catalog_size, 9u);
  const auto bounds = serve::ShardedCatalog::Bounds(9, 3);
  EXPECT_EQ(info.shard_begin, bounds[1]);
  EXPECT_EQ(info.shard_end, bounds[2]);
  EXPECT_GE(stack.rpc.stats().handshakes_ok, 1u);
}

// ---------------------------------------------------------------------------
// Client timeouts (satellite: a hung replica becomes a timed-out Status)
// ---------------------------------------------------------------------------

TEST(ClientTimeoutTest, NonAcceptingServerTimesOutConnect) {
  // A listener that never calls accept: the kernel completes the TCP
  // handshake from the backlog, so connect() alone would "succeed" and the
  // handshake read would block forever without the timeout.
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);

  serve::RpcClient client;
  serve::RpcClientOptions copts;
  copts.connect_timeout_ms = 200;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st =
      client.Connect("127.0.0.1", ntohs(addr.sin_port), copts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ::close(listener);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("timed out"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(client.connected());
  EXPECT_LT(elapsed, 5000) << "must fail within the bound, not hang";
}

TEST(ClientTimeoutTest, HungServerTimesOutCall) {
  // A server that completes the handshake and then goes silent — the
  // mid-call hang a coordinator must survive.
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  std::thread hung_server([listener]() {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    std::string hello_payload;
    if (ReadFrameFrom(fd, &hello_payload)) {
      serve::RpcHelloAck ack;  // accept the handshake...
      std::string wire;
      serve::AppendHelloAckFrame(ack, &wire);
      WriteAll(fd, wire);
      // ... then never answer anything again. Hold the socket open until
      // the client gives up and closes.
      char buf[64];
      while (::read(fd, buf, sizeof(buf)) > 0) {
      }
    }
    ::close(fd);
  });

  serve::RpcClient client;
  serve::RpcClientOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 200;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", ntohs(addr.sin_port), copts).ok());
  serve::RpcRequest req;
  req.id = 1;
  req.k = 1;
  req.slate = {0};
  serve::RpcResponse resp;
  const Status st = client.Call(req, &resp);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("timed out"), std::string::npos)
      << st.ToString();
  client.Close();  // unblocks the hung server's read
  hung_server.join();
  ::close(listener);
}

// ---------------------------------------------------------------------------
// Replica mode: shard-scoped scoring over the wire
// ---------------------------------------------------------------------------

TEST(ShardServingTest, ShardRequestMatchesDirectSubmitOverIdentitySlice) {
  serve::RpcServerOptions opts;
  opts.catalog_size = 9;  // == SmallSpace().num_objects()
  opts.num_shards = 2;
  opts.shard_index = 0;
  opts.model_version = 7;
  ServingStack stack({}, opts);
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  const serve::RpcHelloAck& info = client.server_info();

  const auto ex = TestExamples()[0];
  serve::RpcShardRequest sreq;
  sreq.id = 21;
  sreq.user = ex.user;
  sreq.k = 3;
  sreq.begin = info.shard_begin;
  sreq.end = info.shard_end;
  sreq.history = ex.history;
  serve::RpcShardResponse sresp;
  ASSERT_TRUE(client.CallShard(sreq, &sresp).ok());
  ASSERT_EQ(sresp.status, serve::RpcStatus::kOk);
  EXPECT_EQ(sresp.model_version, 7u);

  // Ground truth: the same slice scored through the local path.
  std::vector<int32_t> slice;
  for (uint64_t p = sreq.begin; p < sreq.end; ++p) {
    slice.push_back(static_cast<int32_t>(p));
  }
  const auto want = stack.batch.Submit(ex, slice, 3).get();
  ASSERT_EQ(sresp.entries.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(sresp.entries[i].item, want[i].item);
    EXPECT_EQ(std::memcmp(&sresp.entries[i].score, &want[i].score,
                          sizeof(float)),
              0);
    // Identity catalog: global position == item id.
    EXPECT_EQ(sresp.entries[i].pos,
              static_cast<uint64_t>(sresp.entries[i].item));
  }

  // A range outside the owned slice is a precise BAD_REQUEST, not a wrong
  // answer.
  sreq.id = 22;
  sreq.end = opts.catalog_size;  // spills into shard 1's slice
  ASSERT_TRUE(client.CallShard(sreq, &sresp).ok());
  EXPECT_EQ(sresp.status, serve::RpcStatus::kBadRequest);
  EXPECT_TRUE(sresp.entries.empty());
  EXPECT_GE(stack.rpc.stats().requests_bad, 1u);
}

TEST(ShardServingTest, NonReplicaServerRejectsShardRequests) {
  ServingStack stack;  // catalog_size = 0: plain slate server
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  EXPECT_FALSE(client.server_info().capabilities &
               serve::kRpcCapShardScoring);
  serve::RpcShardRequest sreq;
  sreq.id = 5;
  sreq.k = 1;
  sreq.begin = 0;
  sreq.end = 3;
  serve::RpcShardResponse sresp;
  ASSERT_TRUE(client.CallShard(sreq, &sresp).ok());
  EXPECT_EQ(sresp.status, serve::RpcStatus::kBadRequest);
  // The connection survives and still serves slate requests.
  serve::RpcRequest req;
  req.id = 6;
  req.k = 1;
  req.slate = {0, 1};
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
}

TEST(RpcServerTest, ShutdownWithIdleConnectionsCompletesImmediately) {
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient idle1, idle2;
  ASSERT_TRUE(idle1.Connect("127.0.0.1", stack.rpc.port()).ok());
  ASSERT_TRUE(idle2.Connect("127.0.0.1", stack.rpc.port()).ok());
  // Idle connections have nothing to drain; Shutdown must not wait for the
  // drain deadline on them.
  stack.rpc.Shutdown();
  EXPECT_EQ(stack.rpc.open_connections(), 0u);
  serve::RpcResponse resp;
  EXPECT_FALSE(idle1.ReadResponse(&resp).ok());
}

// ---------------------------------------------------------------------------
// Fault injection on the client's I/O boundary (util::FailPoint)
// ---------------------------------------------------------------------------

serve::RpcRequest SmallRequest(uint64_t id) {
  serve::RpcRequest req;
  req.id = id;
  req.user = 0;
  req.k = 3;
  req.history = {1, 2, 3};
  req.slate = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  return req;
}

TEST(RpcClientFaultTest, ShortWritesAndEintrAreResumedNotCorrupted) {
  // Regression for the partial-write path of RpcClient's send loop: with
  // every send truncated to ONE byte and every third loop iteration hit by
  // a synthetic EINTR, a request frame must still arrive intact and the
  // response must round-trip — the resume logic may never duplicate, drop,
  // or reorder a byte.
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  util::FailPoint::Spec one_byte;
  one_byte.mode = util::FailPoint::Mode::kEveryK;
  one_byte.n = 1;  // every send
  util::ScopedFailPoint shorten("rpc.client.send.short", one_byte);
  util::FailPoint::Spec eintr;
  eintr.mode = util::FailPoint::Mode::kEveryK;
  eintr.n = 3;
  util::ScopedFailPoint interrupt("rpc.client.send.eintr", eintr);

  const data::SequenceExample ex = TestExamples()[0];
  serve::RpcRequest req;
  req.id = 1;
  req.user = ex.user;
  req.k = 3;
  req.history = ex.history;
  req.slate = FullCatalog(stack.space);
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
  const auto want = stack.batch.Submit(ex, FullCatalog(stack.space), 3).get();
  ExpectRankingEq(resp.items, want, "byte-at-a-time send");
  // The schedule really ran: a frame is dozens of bytes, so the 1-byte
  // sends must have looped at least that many times.
  EXPECT_GT(util::FailPoint::Stats("rpc.client.send.short").failures, 20u);
  EXPECT_GT(util::FailPoint::Stats("rpc.client.send.eintr").failures, 5u);
}

TEST(RpcClientFaultTest, SendFailureClosesTheConnection) {
  // A failed send leaves a part-written frame on the wire — there is no
  // resync point, so the client must close rather than let the next frame
  // be parsed mid-stream. Reconnecting restores service.
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  {
    util::FailPoint::Spec first;
    first.mode = util::FailPoint::Mode::kNth;
    first.n = 1;
    first.error = EPIPE;
    util::ScopedFailPoint fp("rpc.client.send", first);
    const Status st = client.Send(SmallRequest(1));
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_FALSE(client.connected())
        << "a part-written frame must poison (close) the stream";
  }

  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(SmallRequest(2), &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
}

TEST(RpcClientFaultTest, ReadFailureClosesTheConnection) {
  // Same poisoning rule on the read side: a failed read may have consumed a
  // partial frame; the only safe continuation is a fresh connection.
  ServingStack stack;
  ASSERT_TRUE(stack.rpc.Start().ok());
  serve::RpcClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());

  {
    util::FailPoint::Spec first;
    first.mode = util::FailPoint::Mode::kNth;
    first.n = 1;
    util::ScopedFailPoint fp("rpc.client.read", first);
    serve::RpcResponse resp;
    const Status st = client.Call(SmallRequest(1), &resp);
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_FALSE(client.connected());
  }

  ASSERT_TRUE(client.Connect("127.0.0.1", stack.rpc.port()).ok());
  serve::RpcResponse resp;
  ASSERT_TRUE(client.Call(SmallRequest(2), &resp).ok());
  EXPECT_EQ(resp.status, serve::RpcStatus::kOk);
}

}  // namespace
}  // namespace seqfm
