// Lockdown suite for the forward-only serving subsystem (src/serve/):
//   - tape-free Score parity: bit-for-bit equal to the taped eval forward
//     for SeqFM and every registry baseline, at 1/2/8 threads;
//   - serve::Predictor parity (generic micro-batch path and the factored
//     SeqFM catalog program) against the taped batched forward;
//   - checkpoint round-trips (save -> load -> score bit-exact) plus Status
//     error paths for corrupted, truncated, and mismatched files;
//   - death tests for programmer errors (null modules/models).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "baselines/registry.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "nn/module.h"
#include "serve/checkpoint.h"
#include "serve/predictor.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

const std::vector<std::string>& AllBaselines() {
  static const std::vector<std::string> kNames = {
      "FM",  "HOFM",    "NFM", "AFM", "Wide&Deep", "DeepCross",
      "xDeepFM", "DIN", "SASRec",  "TFM", "RRN"};
  return kNames;
}

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

baselines::BaselineConfig SmallBaselineConfig() {
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.mlp_hidden = 8;
  cfg.keep_prob = 1.0f;
  cfg.num_blocks = 2;
  cfg.seed = 123;
  return cfg;
}

core::SeqFmConfig SmallSeqFmConfig() {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = 321;
  return cfg;
}

std::unique_ptr<core::Model> MakeModelByName(const std::string& name,
                                             const data::FeatureSpace& space,
                                             uint64_t seed = 0) {
  if (name == "SeqFM") {
    core::SeqFmConfig cfg = SmallSeqFmConfig();
    if (seed != 0) cfg.seed = seed;
    return std::make_unique<core::SeqFm>(space, cfg);
  }
  baselines::BaselineConfig cfg = SmallBaselineConfig();
  if (seed != 0) cfg.seed = seed;
  return baselines::CreateBaseline(name, space, cfg).ValueOrDie();
}

std::vector<std::string> AllModels() {
  std::vector<std::string> names = AllBaselines();
  names.insert(names.begin(), "SeqFM");
  return names;
}

/// A deterministic batch covering empty, short, and overflowing histories.
std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};
  examples[2] = {3, 0, 2.0f, {}};  // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

data::Batch BuildBatch(const data::BatchBuilder& builder,
                       const std::vector<data::SequenceExample>& examples) {
  std::vector<const data::SequenceExample*> ptrs;
  for (const auto& ex : examples) ptrs.push_back(&ex);
  return builder.Build(ptrs);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectBitEqual(const tensor::Tensor& a, const tensor::Tensor& b,
                    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << context;
}

// ---------------------------------------------------------------------------
// NoGradGuard semantics
// ---------------------------------------------------------------------------

TEST(NoGradGuardTest, DisablesAndRestoresThreadGradMode) {
  EXPECT_TRUE(autograd::GradMode());
  {
    autograd::NoGradGuard guard;
    EXPECT_FALSE(autograd::GradMode());
    {
      autograd::NoGradGuard nested;
      EXPECT_FALSE(autograd::GradMode());
    }
    EXPECT_FALSE(autograd::GradMode());  // nesting must not re-enable
  }
  EXPECT_TRUE(autograd::GradMode());
}

TEST(NoGradGuardTest, DetachedNodesHaveNoGraph) {
  auto a = autograd::Variable::Leaf(tensor::Tensor::Ones({2, 3}),
                                    /*requires_grad=*/true);
  auto b = autograd::Variable::Leaf(tensor::Tensor::Ones({2, 3}),
                                    /*requires_grad=*/true);
  autograd::Variable taped = autograd::Add(a, b);
  EXPECT_EQ(autograd::GraphSize(taped), 3u);
  EXPECT_TRUE(taped.requires_grad());

  autograd::NoGradGuard guard;
  autograd::Variable detached = autograd::Add(a, b);
  EXPECT_EQ(autograd::GraphSize(detached), 1u);  // no parents retained
  EXPECT_FALSE(detached.requires_grad());
  ExpectBitEqual(taped.value(), detached.value(), "add parity");
}

// ---------------------------------------------------------------------------
// Parity battery: tape-free forward == taped forward, all models, 1/2/8
// threads
// ---------------------------------------------------------------------------

class ServeParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeParityTest, TapeFreeForwardMatchesTapedBitForBit) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName(GetParam(), space);
  const auto examples = TestExamples();
  const data::Batch batch = BuildBatch(builder, examples);

  for (size_t threads : {1u, 2u, 8u}) {
    util::SetGlobalThreads(threads);
    autograd::Variable taped = model->Score(batch, /*training=*/false);
    ASSERT_GT(autograd::GraphSize(taped), 1u);

    autograd::NoGradGuard guard;
    autograd::Variable tape_free = model->Score(batch, /*training=*/false);
    EXPECT_EQ(autograd::GraphSize(tape_free), 1u);
    ExpectBitEqual(taped.value(), tape_free.value(),
                   GetParam() + " @threads=" + std::to_string(threads));
  }
  util::SetGlobalThreads(1);
}

TEST_P(ServeParityTest, PredictorMatchesTapedBatchedScoring) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName(GetParam(), space);
  const auto examples = TestExamples();

  std::vector<int32_t> catalog;
  for (size_t i = 0; i < space.num_objects(); ++i) {
    catalog.push_back(static_cast<int32_t>(i));
  }

  serve::PredictorOptions opts;
  opts.micro_batch = 4;  // force several micro-batches per request
  serve::Predictor predictor(model.get(), &builder, opts);
  EXPECT_EQ(predictor.fast_path_active(), GetParam() == "SeqFM");

  for (size_t threads : {1u, 2u, 8u}) {
    util::SetGlobalThreads(threads);
    for (const auto& ex : examples) {
      // Taped reference, built through the same batching.
      std::vector<float> ref;
      for (size_t start = 0; start < catalog.size(); start += 4) {
        const size_t end = std::min(catalog.size(), start + 4);
        std::vector<const data::SequenceExample*> repeated(end - start, &ex);
        std::vector<int32_t> chunk(catalog.begin() + start,
                                   catalog.begin() + end);
        data::Batch batch = builder.Build(repeated, &chunk);
        autograd::Variable out = model->Score(batch, /*training=*/false);
        for (size_t i = 0; i < end - start; ++i) {
          ref.push_back(out.value().data()[i]);
        }
      }
      const std::vector<float> got = predictor.ScoreCandidates(ex, catalog);
      ASSERT_EQ(got.size(), ref.size());
      EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                            ref.size() * sizeof(float)),
                0)
          << GetParam() << " @threads=" << threads;
    }
  }
  util::SetGlobalThreads(1);
}

TEST_P(ServeParityTest, CheckpointRoundTripScoresBitExact) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto original = MakeModelByName(GetParam(), space);
  // Different seed => different random init, so a pass proves the load.
  auto restored = MakeModelByName(GetParam(), space, /*seed=*/999);

  const data::Batch batch = BuildBatch(builder, TestExamples());
  autograd::Variable before = original->Score(batch, /*training=*/false);

  const std::string path = TempPath("ckpt_" + std::to_string(
      std::hash<std::string>{}(GetParam())) + ".bin");
  auto* original_module = dynamic_cast<nn::Module*>(original.get());
  auto* restored_module = dynamic_cast<nn::Module*>(restored.get());
  ASSERT_NE(original_module, nullptr);
  ASSERT_NE(restored_module, nullptr);

  ASSERT_TRUE(serve::Checkpoint::Save(*original_module, path).ok());
  ASSERT_TRUE(serve::Checkpoint::Load(restored_module, path).ok());

  autograd::Variable after = restored->Score(batch, /*training=*/false);
  ExpectBitEqual(before.value(), after.value(), GetParam() + " round trip");
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServeParityTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '&') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Predictor behaviour beyond parity
// ---------------------------------------------------------------------------

TEST(PredictorTest, TopKIsSortedDeterministicAndClamped) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName("SeqFM", space);
  serve::Predictor predictor(model.get(), &builder, {});
  const auto ex = TestExamples()[0];

  const auto top3 = predictor.TopKAll(ex, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_GE(top3[0].score, top3[1].score);
  EXPECT_GE(top3[1].score, top3[2].score);

  // k larger than the catalog is clamped.
  const auto all = predictor.TopKAll(ex, 10000);
  EXPECT_EQ(all.size(), space.num_objects());

  // The top item agrees with an argmax over the raw scores.
  std::vector<int32_t> catalog;
  for (size_t i = 0; i < space.num_objects(); ++i) {
    catalog.push_back(static_cast<int32_t>(i));
  }
  const auto scores = predictor.ScoreCandidates(ex, catalog);
  size_t argmax = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[argmax]) argmax = i;
  }
  EXPECT_EQ(top3[0].item, catalog[argmax]);
}

TEST(PredictorTest, FromCheckpointRestoresAndScores) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto trained = MakeModelByName("SeqFM", space);
  const std::string path = TempPath("predictor_ckpt.bin");
  ASSERT_TRUE(dynamic_cast<nn::Module*>(trained.get())
                  ->SaveParameters(path)
                  .ok());

  auto fresh = MakeModelByName("SeqFM", space, /*seed=*/777);
  auto predictor =
      serve::Predictor::FromCheckpoint(fresh.get(), &builder, path);
  ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();

  serve::Predictor reference(trained.get(), &builder, {});
  const auto ex = TestExamples()[1];
  std::vector<int32_t> catalog = {0, 3, 5, 8};
  const auto got = (*predictor)->ScoreCandidates(ex, catalog);
  const auto want = reference.ScoreCandidates(ex, catalog);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0);

  const auto missing = serve::Predictor::FromCheckpoint(
      fresh.get(), &builder, TempPath("does_not_exist.bin"));
  EXPECT_FALSE(missing.ok());
  std::remove(path.c_str());
}

TEST(PredictorTest, RankingEvaluatorFastPathMatchesModelPath) {
  // Build a small temporal dataset so the evaluator has test examples.
  data::InteractionLog log(6, 8);
  int64_t t = 0;
  for (int32_t u = 0; u < 6; ++u) {
    for (int32_t o = 0; o < 5; ++o) {
      log.Add({u, (u + o) % 8, ++t, 1.0f});
    }
  }
  log.Finalize();
  auto dataset = data::TemporalDataset::FromLog(log).ValueOrDie();
  data::FeatureSpace space(log.num_users(), log.num_objects());
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName("SeqFM", space);

  eval::RankingEvaluator evaluator(&dataset, &builder, /*num_negatives=*/5,
                                   /*seed=*/99);
  serve::Predictor predictor(model.get(), &builder, {});

  const auto via_model = evaluator.Evaluate(model.get(), {1, 5});
  const auto via_predictor = evaluator.Evaluate(predictor, {1, 5});
  for (size_t k : {1u, 5u}) {
    EXPECT_DOUBLE_EQ(via_model.hr.at(k), via_predictor.hr.at(k));
    EXPECT_DOUBLE_EQ(via_model.ndcg.at(k), via_predictor.ndcg.at(k));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint error paths: every bad file must produce a Status, not an abort
// ---------------------------------------------------------------------------

class CheckpointErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    space_ = SmallSpace();
    model_ = MakeModelByName("SeqFM", space_);
    module_ = dynamic_cast<nn::Module*>(model_.get());
    path_ = TempPath("checkpoint_error_test.bin");
    ASSERT_TRUE(serve::Checkpoint::Save(*module_, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<char> ReadAll() {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }
  void WriteAll(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  data::FeatureSpace space_;
  std::unique_ptr<core::Model> model_;
  nn::Module* module_ = nullptr;
  std::string path_;
};

TEST_F(CheckpointErrorTest, MissingFileIsNotFound) {
  const Status st =
      serve::Checkpoint::Load(module_, TempPath("no_such_file.bin"));
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(CheckpointErrorTest, SaveIsAtomicAndDurable) {
  // The durability contract: Save writes path.tmp, fsyncs it, renames it
  // over path, then fsyncs the parent directory. A successful Save must
  // leave a loadable file and no stray temp; a failed Save (unwritable
  // destination) must return IoError and leave the previous checkpoint
  // bit-for-bit untouched.
  const std::vector<char> before = ReadAll();
  ASSERT_TRUE(serve::Checkpoint::Save(*module_, path_).ok());
  EXPECT_TRUE(ReadAll() == before);  // deterministic serialization
  {
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good()) << "temp file must not survive a Save";
  }
  ASSERT_TRUE(serve::Checkpoint::Load(module_, path_).ok());

  const std::string bad =
      TempPath("no_such_dir_for_ckpt") + "/nested/checkpoint.bin";
  const Status st = serve::Checkpoint::Save(*module_, bad);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_TRUE(ReadAll() == before) << "failed Save must not disturb path_";
}

TEST_F(CheckpointErrorTest, CrashBeforeRenameLeavesOrphanSweptByNextSave) {
  // Crash simulation: the ckpt.rename failpoint makes Save die AFTER the
  // temp file is written and fsynced but BEFORE the rename — exactly what a
  // process crash at that instant leaves behind. The orphaned .tmp must not
  // disturb the real checkpoint, and the janitor in the NEXT Save must
  // sweep it.
  const std::vector<char> before = ReadAll();
  {
    util::FailPoint::Spec crash;
    crash.mode = util::FailPoint::Mode::kNth;
    crash.n = 1;
    util::ScopedFailPoint fp("ckpt.rename", crash);
    const Status st = serve::Checkpoint::Save(*module_, path_);
    EXPECT_EQ(st.code(), StatusCode::kIoError);
  }
  {
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_TRUE(tmp.good()) << "the simulated crash must leave the orphan";
  }
  EXPECT_TRUE(ReadAll() == before) << "the real checkpoint must be intact";

  // The next Save sweeps the orphan and completes normally.
  ASSERT_TRUE(serve::Checkpoint::Save(*module_, path_).ok());
  {
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good()) << "janitor must remove the stale temp";
  }
  ASSERT_TRUE(serve::Checkpoint::Load(module_, path_).ok());
}

TEST_F(CheckpointErrorTest, CrashBeforeRenameOrphanIsSweptByLoadToo) {
  // A reader must also clean up: restart-after-crash commonly goes straight
  // to Load, and the orphan would otherwise sit there forever.
  {
    util::FailPoint::Spec crash;
    crash.mode = util::FailPoint::Mode::kNth;
    crash.n = 1;
    util::ScopedFailPoint fp("ckpt.rename", crash);
    EXPECT_FALSE(serve::Checkpoint::Save(*module_, path_).ok());
  }
  {
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    ASSERT_TRUE(tmp.good());
  }
  ASSERT_TRUE(serve::Checkpoint::Load(module_, path_).ok());
  {
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good()) << "Load's janitor must remove the stale temp";
  }
}

TEST_F(CheckpointErrorTest, InjectedWriteAndFsyncFailuresLeaveNoDebris) {
  // Unlike the rename crash, ordinary I/O failures (write, fsync) are
  // ERRORS the process survives — Save must clean its own temp up and
  // leave the previous checkpoint untouched.
  const std::vector<char> before = ReadAll();
  for (const char* site : {"ckpt.open", "ckpt.write", "ckpt.fsync"}) {
    util::FailPoint::Spec first;
    first.mode = util::FailPoint::Mode::kNth;
    first.n = 1;
    util::ScopedFailPoint fp(site, first);
    const Status st = serve::Checkpoint::Save(*module_, path_);
    EXPECT_EQ(st.code(), StatusCode::kIoError) << site;
    std::ifstream tmp(path_ + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good()) << site << " must not leave a temp file";
    EXPECT_TRUE(ReadAll() == before) << site;
  }
  ASSERT_TRUE(serve::Checkpoint::Load(module_, path_).ok());
}

TEST_F(CheckpointErrorTest, CorruptedMagicIsInvalidArgument) {
  auto bytes = ReadAll();
  bytes[0] = 'X';
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("magic"), std::string::npos);
}

TEST_F(CheckpointErrorTest, UnsupportedVersionIsInvalidArgument) {
  auto bytes = ReadAll();
  bytes[4] = 77;  // version field follows the 4-byte magic
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST_F(CheckpointErrorTest, TruncatedPayloadIsIoError) {
  auto bytes = ReadAll();
  bytes.resize(bytes.size() / 2);
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(CheckpointErrorTest, TruncatedHeaderIsIoError) {
  auto bytes = ReadAll();
  bytes.resize(6);
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(CheckpointErrorTest, OverdeclaredTensorCountFailsFastOnInspect) {
  // A count that passes the kMaxTensors sanity cap but cannot possibly fit
  // in the file must be rejected up front — before entries.reserve(count)
  // or any per-entry loop acts on the lie.
  auto bytes = ReadAll();
  const uint64_t huge = 500000;  // < the 2^20 cap, >> what the file holds
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));  // count follows header
  WriteAll(bytes);
  const auto manifest = serve::Checkpoint::Inspect(path_);
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(manifest.status().message().find("bytes remain"),
            std::string::npos);
}

TEST_F(CheckpointErrorTest, DeclaredCountExceedingFileSizeFailsFastOnLoad) {
  // Keep the header and the (correct) tensor count but drop the manifest:
  // Load must reject on the declared-count-vs-file-size check, not by
  // looping through truncated entry reads.
  auto bytes = ReadAll();
  bytes.resize(20);  // magic + version + count + 4 stray bytes
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("bytes remain"), std::string::npos);
}

TEST_F(CheckpointErrorTest, FlippedPayloadByteFailsChecksum) {
  auto bytes = ReadAll();
  // Flip one byte near the end of the payload region (before the 8-byte
  // footer) — manifest fields stay intact, so only the checksum can catch it.
  bytes[bytes.size() - 12] ^= 0x40;
  WriteAll(bytes);
  const Status st = serve::Checkpoint::Load(module_, path_);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("corrupted"), std::string::npos);
}

TEST_F(CheckpointErrorTest, ShapeMismatchIsInvalidArgument) {
  core::SeqFmConfig cfg = SmallSeqFmConfig();
  cfg.embedding_dim = 4;  // differs from the saved model's 8
  core::SeqFm narrow(space_, cfg);
  const Status st = serve::Checkpoint::Load(&narrow, path_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointErrorTest, ParameterCountMismatchIsInvalidArgument) {
  auto fm = MakeModelByName("FM", space_);
  const Status st =
      serve::Checkpoint::Load(dynamic_cast<nn::Module*>(fm.get()), path_);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointErrorTest, FailedLoadLeavesModelUntouched) {
  const data::BatchBuilder builder(space_, kSeqLen);
  const data::Batch batch = BuildBatch(builder, TestExamples());
  autograd::Variable before = model_->Score(batch, /*training=*/false);

  auto bytes = ReadAll();
  bytes[bytes.size() - 12] ^= 0x40;  // checksum failure after full staging
  WriteAll(bytes);
  ASSERT_FALSE(serve::Checkpoint::Load(module_, path_).ok());

  autograd::Variable after = model_->Score(batch, /*training=*/false);
  ExpectBitEqual(before.value(), after.value(), "model untouched");
}

TEST_F(CheckpointErrorTest, CraftedHugeTensorCountIsRejectedNotAborted) {
  auto bytes = ReadAll();
  // The uint64 tensor count sits at bytes [8, 16); set it to 2^64 - 1. A
  // reserve() on that value must not be reached (it would throw/abort).
  for (size_t i = 8; i < 16; ++i) bytes[i] = static_cast<char>(0xff);
  WriteAll(bytes);
  EXPECT_EQ(serve::Checkpoint::Load(module_, path_).code(),
            StatusCode::kInvalidArgument);
  const auto inspected = serve::Checkpoint::Inspect(path_);
  ASSERT_FALSE(inspected.ok());
  EXPECT_EQ(inspected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointErrorTest, InspectReportsManifest) {
  auto manifest = serve::Checkpoint::Inspect(path_);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, serve::Checkpoint::kVersion);
  EXPECT_EQ(manifest->entries.size(), module_->NamedParameters().size());
  EXPECT_EQ(manifest->total_parameters(), module_->NumParameters());
  EXPECT_FALSE(manifest->entries.front().name.empty());

  auto missing = serve::Checkpoint::Inspect(TempPath("nope.bin"));
  EXPECT_FALSE(missing.ok());
}

// ---------------------------------------------------------------------------
// Death tests: null arguments are programmer errors
// ---------------------------------------------------------------------------

using ServeDeathTest = CheckpointErrorTest;

TEST_F(ServeDeathTest, NullModuleLoadDies) {
  EXPECT_DEATH(
      { (void)serve::Checkpoint::Load(nullptr, path_); }, "null module");
}

TEST_F(ServeDeathTest, PredictorNullArgumentsDie) {
  data::BatchBuilder builder(space_, kSeqLen);
  EXPECT_DEATH({ serve::Predictor p(nullptr, &builder, {}); }, "null model");
  EXPECT_DEATH({ serve::Predictor p(model_.get(), nullptr, {}); },
               "null batch builder");
}

}  // namespace
}  // namespace seqfm
