// Property suite: every autograd op's analytic gradient is verified against
// central finite differences via autograd::GradCheck. These tests are the
// foundation the model correctness rests on — a silent gradient bug here
// would corrupt every experiment downstream.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "nn/masks.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace seqfm {
namespace autograd {
namespace {

using tensor::Tensor;

Variable RandomLeaf(std::vector<size_t> shape, Rng* rng, float stddev = 0.8f) {
  Tensor t(std::move(shape));
  tensor::FillNormal(&t, rng, stddev);
  return Variable::Leaf(std::move(t), /*requires_grad=*/true);
}

void ExpectGradCheckPasses(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> leaves) {
  auto report = GradCheck(fn, std::move(leaves));
  EXPECT_TRUE(report.passed)
      << "max_abs_error=" << report.max_abs_error
      << " max_rel_error=" << report.max_rel_error
      << " worst input " << report.worst_input << " elem "
      << report.worst_element;
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

TEST(GradCheckElementwise, Add) {
  Rng rng(101);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) { return SumAll(Add(v[0], v[1])); },
      {RandomLeaf({3, 4}, &rng), RandomLeaf({3, 4}, &rng)});
}

TEST(GradCheckElementwise, SubAndMulComposition) {
  Rng rng(102);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        return SumAll(Mul(Sub(v[0], v[1]), v[0]));
      },
      {RandomLeaf({2, 5}, &rng), RandomLeaf({2, 5}, &rng)});
}

TEST(GradCheckElementwise, ScaleAndAddScalar) {
  Rng rng(103);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        return SumAll(AddScalar(Scale(v[0], -2.5f), 1.0f));
      },
      {RandomLeaf({6}, &rng)});
}

TEST(GradCheckElementwise, AddBiasRank2) {
  Rng rng(104);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) { return SumAll(Mul(AddBias(v[0], v[1]), v[0])); },
      {RandomLeaf({3, 4}, &rng), RandomLeaf({4}, &rng)});
}

TEST(GradCheckElementwise, AddBiasRank3) {
  Rng rng(105);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        return SumAll(Mul(AddBias(v[0], v[1]), AddBias(v[0], v[1])));
      },
      {RandomLeaf({2, 3, 4}, &rng), RandomLeaf({4}, &rng)});
}

TEST(GradCheckElementwise, AddBroadcastBatch) {
  Rng rng(106);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = AddBroadcastBatch(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3, 2}, &rng), RandomLeaf({3, 2}, &rng)});
}

TEST(GradCheckActivations, Sigmoid) {
  Rng rng(107);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) { return SumAll(Sigmoid(v[0])); },
      {RandomLeaf({4, 3}, &rng)});
}

TEST(GradCheckActivations, Tanh) {
  Rng rng(108);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        return SumAll(Mul(Tanh(v[0]), v[0]));
      },
      {RandomLeaf({4, 3}, &rng)});
}

TEST(GradCheckActivations, ReluAwayFromKink) {
  Rng rng(109);
  // Keep inputs away from 0 so finite differences are valid.
  Tensor t({10});
  for (size_t i = 0; i < 10; ++i) {
    t.at(i) = (i % 2 == 0 ? 1.0f : -1.0f) * (0.5f + static_cast<float>(i));
  }
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) { return SumAll(Relu(v[0])); },
      {Variable::Leaf(std::move(t), true)});
  (void)rng;
}

// ---------------------------------------------------------------------------
// Matmul family
// ---------------------------------------------------------------------------

TEST(GradCheckMatMul, Rank2) {
  Rng rng(110);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = MatMul(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({3, 4}, &rng), RandomLeaf({4, 2}, &rng)});
}

TEST(GradCheckMatMul, BmmShared) {
  Rng rng(111);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = BmmShared(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3, 4}, &rng), RandomLeaf({4, 3}, &rng)});
}

class BmmTransposeGradCheck
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(BmmTransposeGradCheck, AllTransposeCombos) {
  const auto [ta, tb] = GetParam();
  Rng rng(112);
  // Shapes so that A' is [3,4] and B' is [4,2] per batch of 2.
  std::vector<size_t> a_shape = ta ? std::vector<size_t>{2, 4, 3}
                                   : std::vector<size_t>{2, 3, 4};
  std::vector<size_t> b_shape = tb ? std::vector<size_t>{2, 2, 4}
                                   : std::vector<size_t>{2, 4, 2};
  ExpectGradCheckPasses(
      [ta, tb](const std::vector<Variable>& v) {
        auto y = Bmm(v[0], v[1], ta, tb);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf(a_shape, &rng), RandomLeaf(b_shape, &rng)});
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, BmmTransposeGradCheck,
    ::testing::Values(std::pair{false, false}, std::pair{false, true},
                      std::pair{true, false}, std::pair{true, true}));

TEST(GradCheckMatMul, BmmLeftShared) {
  Rng rng(113);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = BmmLeftShared(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({3, 4}, &rng), RandomLeaf({2, 4, 3}, &rng)});
}

TEST(GradCheckMatMul, RowDot) {
  Rng rng(114);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = RowDot(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({4, 3}, &rng), RandomLeaf({4, 3}, &rng)});
}

// ---------------------------------------------------------------------------
// Softmax / LayerNorm
// ---------------------------------------------------------------------------

TEST(GradCheckSoftmax, Unmasked) {
  Rng rng(115);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto p = MaskedSoftmax(v[0], Variable());
        return SumAll(Mul(p, v[0]));
      },
      {RandomLeaf({3, 5}, &rng)});
}

TEST(GradCheckSoftmax, CausalMaskedRank3) {
  Rng rng(116);
  Variable mask = nn::MakeCausalMask(4);
  ExpectGradCheckPasses(
      [mask](const std::vector<Variable>& v) {
        auto p = MaskedSoftmax(v[0], mask);
        return SumAll(Mul(p, v[0]));
      },
      {RandomLeaf({2, 4, 4}, &rng)});
}

TEST(GradCheckSoftmax, CrossMasked) {
  Rng rng(117);
  Variable mask = nn::MakeCrossMask(2, 3);
  ExpectGradCheckPasses(
      [mask](const std::vector<Variable>& v) {
        auto p = MaskedSoftmax(v[0], mask);
        return SumAll(Mul(p, v[0]));
      },
      {RandomLeaf({2, 5, 5}, &rng)});
}

TEST(GradCheckLayerNorm, AllThreeInputs) {
  Rng rng(118);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = LayerNorm(v[0], v[1], v[2]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({3, 6}, &rng, 1.5f), RandomLeaf({6}, &rng),
       RandomLeaf({6}, &rng)});
}

TEST(GradCheckLayerNorm, Rank3Input) {
  Rng rng(119);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = LayerNorm(v[0], v[1], v[2]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3, 4}, &rng, 1.5f), RandomLeaf({4}, &rng),
       RandomLeaf({4}, &rng)});
}

// ---------------------------------------------------------------------------
// Structural
// ---------------------------------------------------------------------------

TEST(GradCheckStructural, ConcatLastDim) {
  Rng rng(120);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = ConcatLastDim({v[0], v[1], v[2]});
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3}, &rng), RandomLeaf({2, 1}, &rng),
       RandomLeaf({2, 4}, &rng)});
}

TEST(GradCheckStructural, ConcatAxis1) {
  Rng rng(121);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = ConcatAxis1(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 2, 3}, &rng), RandomLeaf({2, 4, 3}, &rng)});
}

TEST(GradCheckStructural, MeanAxis1WithDivisor) {
  Rng rng(122);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = MeanAxis1(v[0], 7.0f);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 5, 3}, &rng)});
}

TEST(GradCheckStructural, SliceRow) {
  Rng rng(123);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = SliceRow(v[0], 2);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({3, 4, 2}, &rng)});
}

TEST(GradCheckStructural, SumLastDimKeepRank2AndRank3) {
  Rng rng(124);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto a = SumLastDimKeep(v[0]);
        return SumAll(Mul(a, a));
      },
      {RandomLeaf({3, 5}, &rng)});
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto a = SumLastDimKeep(v[0]);
        return SumAll(Mul(a, a));
      },
      {RandomLeaf({2, 3, 4}, &rng)});
}

TEST(GradCheckStructural, PairwiseProductUpper) {
  Rng rng(125);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = PairwiseProductUpper(v[0]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 4, 3}, &rng)});
}

TEST(GradCheckStructural, PairwiseProductCross) {
  Rng rng(126);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = PairwiseProductCross(v[0], v[1]);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3, 2}, &rng), RandomLeaf({2, 4, 2}, &rng)});
}

TEST(GradCheckStructural, ReshapeAndExpandRows) {
  Rng rng(127);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = Reshape(v[0], {6, 2});
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({3, 4}, &rng)});
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) {
        auto y = ExpandRows(v[0], 4);
        return SumAll(Mul(y, y));
      },
      {RandomLeaf({2, 3}, &rng)});
}

// ---------------------------------------------------------------------------
// Embedding & losses
// ---------------------------------------------------------------------------

TEST(GradCheckEmbedding, GatherWithPadding) {
  Rng rng(128);
  std::vector<int32_t> idx = {0, 2, -1, 1, 1, -1};
  ExpectGradCheckPasses(
      [idx](const std::vector<Variable>& v) {
        auto e = EmbeddingGather(v[0], idx, 2, 3);
        return SumAll(Mul(e, e));
      },
      {RandomLeaf({4, 3}, &rng)});
}

TEST(GradCheckEmbedding, SumGather) {
  Rng rng(129);
  std::vector<int32_t> idx = {0, 3, -1, 2};
  ExpectGradCheckPasses(
      [idx](const std::vector<Variable>& v) {
        auto s = EmbeddingSumGather(v[0], idx, 2, 2);
        return SumAll(Mul(s, s));
      },
      {RandomLeaf({5, 1}, &rng)});
}

TEST(GradCheckLoss, Bpr) {
  Rng rng(130);
  ExpectGradCheckPasses(
      [](const std::vector<Variable>& v) { return BprLoss(v[0], v[1]); },
      {RandomLeaf({4, 1}, &rng), RandomLeaf({4, 1}, &rng)});
}

TEST(GradCheckLoss, BceWithLogits) {
  Rng rng(131);
  const std::vector<float> labels = {1.0f, 0.0f, 1.0f};
  ExpectGradCheckPasses(
      [labels](const std::vector<Variable>& v) {
        return BceWithLogitsLoss(v[0], labels);
      },
      {RandomLeaf({3, 1}, &rng)});
}

TEST(GradCheckLoss, Mse) {
  Rng rng(132);
  const std::vector<float> targets = {0.5f, -1.0f, 2.0f};
  ExpectGradCheckPasses(
      [targets](const std::vector<Variable>& v) {
        return MseLoss(v[0], targets);
      },
      {RandomLeaf({3, 1}, &rng)});
}

// ---------------------------------------------------------------------------
// Deep composition resembling one SeqFM view
// ---------------------------------------------------------------------------

TEST(GradCheckComposition, AttentionLikeStack) {
  Rng rng(133);
  Variable mask = nn::MakeCausalMask(3);
  ExpectGradCheckPasses(
      [mask](const std::vector<Variable>& v) {
        // E [2,3,4]; Wq, Wk, Wv [4,4]; gamma/beta [4].
        auto q = BmmShared(v[0], v[1]);
        auto k = BmmShared(v[0], v[2]);
        auto val = BmmShared(v[0], v[3]);
        auto scores = Scale(Bmm(q, k, false, true), 0.5f);
        auto probs = MaskedSoftmax(scores, mask);
        auto h = Bmm(probs, val);
        auto pooled = MeanAxis1(h, 3.0f);
        auto normed = LayerNorm(pooled, v[4], v[5]);
        return SumAll(Mul(normed, pooled));
      },
      {RandomLeaf({2, 3, 4}, &rng), RandomLeaf({4, 4}, &rng),
       RandomLeaf({4, 4}, &rng), RandomLeaf({4, 4}, &rng),
       RandomLeaf({4}, &rng), RandomLeaf({4}, &rng)});
}

// ---------------------------------------------------------------------------
// Inference mode must not leak into training
// ---------------------------------------------------------------------------

// Runs a taped forward+backward on an attention-like stack; optionally runs a
// tape-free forward of the same stack between graph construction and the
// backward pass, and between two backward passes. Gradients of every leaf
// must be bit-for-bit identical whether or not inference-mode forwards are
// interleaved — the no-grad guard may not perturb tape state.
TEST(NoGradInterleaving, GradientsUnchangedByInferenceForwards) {
  auto build_leaves = [] {
    Rng rng(177);  // fixed seed: both runs see identical parameters
    std::vector<Variable> v;
    v.push_back(RandomLeaf({2, 3, 4}, &rng));
    v.push_back(RandomLeaf({4, 4}, &rng));
    v.push_back(RandomLeaf({4, 4}, &rng));
    return v;
  };
  auto forward = [](const std::vector<Variable>& v) {
    auto q = BmmShared(v[0], v[1]);
    auto k = BmmShared(v[0], v[2]);
    auto scores = Scale(Bmm(q, k, false, true), 0.5f);
    auto probs = MaskedSoftmax(scores, Variable());
    return SumAll(Bmm(probs, v[0]));
  };

  auto run = [&](bool interleave) {
    std::vector<Variable> v = build_leaves();
    Variable loss = forward(v);
    if (interleave) {
      NoGradGuard guard;
      (void)forward(v);  // inference forward between tape build and backward
    }
    Backward(loss);
    if (interleave) {
      NoGradGuard guard;
      (void)forward(v);
    }
    // Second accumulation pass on a fresh graph (optimizer-style reuse).
    Variable loss2 = forward(v);
    Backward(loss2);
    std::vector<tensor::Tensor> grads;
    for (auto& leaf : v) grads.push_back(leaf.grad());
    return grads;
  };

  const auto clean = run(/*interleave=*/false);
  const auto interleaved = run(/*interleave=*/true);
  ASSERT_EQ(clean.size(), interleaved.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(clean[i].size(), interleaved[i].size());
    EXPECT_EQ(std::memcmp(clean[i].data(), interleaved[i].data(),
                          clean[i].size() * sizeof(float)),
              0)
        << "leaf " << i;
  }
  EXPECT_TRUE(GradMode()) << "guard must restore grad mode";
}

}  // namespace
}  // namespace autograd
}  // namespace seqfm
