#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "baselines/fm.h"
#include "baselines/registry.h"
#include "baselines/tfm.h"
#include "data/dataset.h"

namespace seqfm {
namespace baselines {
namespace {

data::Batch MakeBatch(const data::FeatureSpace& space, size_t max_seq_len,
                      std::vector<std::vector<int32_t>> histories,
                      std::vector<int32_t> users,
                      std::vector<int32_t> targets) {
  data::BatchBuilder builder(space, max_seq_len);
  static std::vector<data::SequenceExample> examples;  // keep alive per call
  examples.clear();
  examples.resize(users.size());
  std::vector<const data::SequenceExample*> ptrs;
  for (size_t i = 0; i < users.size(); ++i) {
    examples[i].user = users[i];
    examples[i].target = targets[i];
    examples[i].history = histories[i];
    ptrs.push_back(&examples[i]);
  }
  return builder.Build(ptrs);
}

BaselineConfig SmallConfig() {
  BaselineConfig cfg;
  cfg.embedding_dim = 6;
  cfg.max_seq_len = 4;
  cfg.mlp_hidden = 8;
  cfg.keep_prob = 1.0f;
  cfg.num_blocks = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Parameterized smoke + gradient tests over every baseline
// ---------------------------------------------------------------------------

class BaselineParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineParamTest, ScoresAreFiniteAndCorrectShape) {
  data::FeatureSpace space(4, 7);
  auto model = CreateBaseline(GetParam(), space, SmallConfig());
  ASSERT_TRUE(model.ok());
  auto batch =
      MakeBatch(space, 4, {{0, 1, 2, 3}, {5}, {}}, {0, 1, 3}, {4, 6, 0});
  auto out = (*model)->Score(batch, /*training=*/false);
  ASSERT_EQ(out.value().shape(), (std::vector<size_t>{3, 1}));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(out.value().at(i, 0))) << GetParam();
  }
}

TEST_P(BaselineParamTest, EvaluationIsDeterministic) {
  data::FeatureSpace space(4, 7);
  auto model = CreateBaseline(GetParam(), space, SmallConfig());
  ASSERT_TRUE(model.ok());
  auto batch = MakeBatch(space, 4, {{2, 3}}, {1}, {5});
  EXPECT_EQ((*model)->Score(batch, false).value().at(0, 0),
            (*model)->Score(batch, false).value().at(0, 0));
}

TEST_P(BaselineParamTest, GradientsFlowFromLoss) {
  data::FeatureSpace space(4, 7);
  auto model = CreateBaseline(GetParam(), space, SmallConfig());
  ASSERT_TRUE(model.ok());
  auto batch = MakeBatch(space, 4, {{0, 1, 2}, {4, 5}}, {0, 2}, {3, 6});
  auto out = (*model)->Score(batch, /*training=*/true);
  autograd::Backward(autograd::SumAll(out));
  float total = 0.0f;
  for (const auto& p : (*model)->TrainableParameters()) {
    for (size_t i = 0; i < p.grad().size(); ++i) {
      total += std::abs(p.grad().data()[i]);
    }
  }
  EXPECT_GT(total, 0.0f) << GetParam();
}

TEST_P(BaselineParamTest, HandlesEmptyHistory) {
  data::FeatureSpace space(4, 7);
  auto model = CreateBaseline(GetParam(), space, SmallConfig());
  ASSERT_TRUE(model.ok());
  auto batch = MakeBatch(space, 4, {{}}, {0}, {1});
  EXPECT_TRUE(std::isfinite((*model)->Score(batch, false).value().at(0, 0)));
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineParamTest,
    ::testing::Values("FM", "HOFM", "NFM", "AFM", "Wide&Deep", "DeepCross",
                      "xDeepFM", "DIN", "SASRec", "TFM", "RRN"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RegistryTest, UnknownNameIsNotFound) {
  data::FeatureSpace space(2, 3);
  EXPECT_FALSE(CreateBaseline("BERT4Rec", space, SmallConfig()).ok());
}

TEST(RegistryTest, TaskListsMatchPaperTables) {
  EXPECT_EQ(RankingBaselines().size(), 7u);
  EXPECT_EQ(ClassificationBaselines().size(), 7u);
  EXPECT_EQ(RegressionBaselines().size(), 7u);
  // Task-specific competitors appear only in their task list (Sec. V-B).
  auto contains = [](const std::vector<std::string>& v, const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  EXPECT_TRUE(contains(RankingBaselines(), "SASRec"));
  EXPECT_TRUE(contains(RankingBaselines(), "TFM"));
  EXPECT_TRUE(contains(ClassificationBaselines(), "DIN"));
  EXPECT_TRUE(contains(ClassificationBaselines(), "xDeepFM"));
  EXPECT_TRUE(contains(RegressionBaselines(), "RRN"));
  EXPECT_TRUE(contains(RegressionBaselines(), "HOFM"));
  EXPECT_FALSE(contains(RankingBaselines(), "DIN"));
}

// ---------------------------------------------------------------------------
// FM: the sum-of-squares identity against brute force
// ---------------------------------------------------------------------------

TEST(FmTest, MatchesBruteForcePairwiseInteractions) {
  data::FeatureSpace space(3, 4);
  BaselineConfig cfg = SmallConfig();
  Fm fm(space, cfg);
  auto batch = MakeBatch(space, 4, {{0, 2}}, {1}, {3});

  const float score = fm.Score(batch, false).value().at(0, 0);

  // Brute force Eq. 2 on the active unified features.
  std::vector<int32_t> active;
  for (size_t i = 0; i < batch.n_unified; ++i) {
    if (batch.unified_ids[i] >= 0) active.push_back(batch.unified_ids[i]);
  }
  float expected = 0.0f;  // bias is zero-initialized; weights too
  const auto named = fm.NamedParameters();
  const autograd::Variable* table = nullptr;
  for (const auto& [name, var] : named) {
    if (name == "embedding.table") table = &var;
  }
  ASSERT_NE(table, nullptr);
  const size_t d = cfg.embedding_dim;
  for (size_t a = 0; a < active.size(); ++a) {
    for (size_t b = a + 1; b < active.size(); ++b) {
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) {
        dot += table->value().at(active[a], j) * table->value().at(active[b], j);
      }
      expected += dot;
    }
  }
  EXPECT_NEAR(score, expected, 1e-3f);
}

TEST(FmTest, OrderInvariance) {
  // FM treats the history as a set: permuting it must not change the score.
  data::FeatureSpace space(3, 6);
  Fm fm(space, SmallConfig());
  auto ab = MakeBatch(space, 4, {{0, 1, 2, 3}}, {1}, {4});
  auto ba = MakeBatch(space, 4, {{3, 2, 1, 0}}, {1}, {4});
  EXPECT_NEAR(fm.Score(ab, false).value().at(0, 0),
              fm.Score(ba, false).value().at(0, 0), 1e-4f);
}

TEST(HofmTest, ThirdOrderMatchesBruteForce) {
  data::FeatureSpace space(2, 5);
  BaselineConfig cfg = SmallConfig();
  Hofm hofm(space, cfg);
  auto batch = MakeBatch(space, 4, {{0, 1, 2}}, {0}, {3});

  const float score = hofm.Score(batch, false).value().at(0, 0);

  std::vector<int32_t> active;
  for (size_t i = 0; i < batch.n_unified; ++i) {
    if (batch.unified_ids[i] >= 0) active.push_back(batch.unified_ids[i]);
  }
  // Copy the handles: NamedParameters() returns a temporary, so keeping
  // pointers into it would dangle (Variables are cheap shared_ptr wrappers).
  autograd::Variable t2, t3;
  for (const auto& [name, var] : hofm.NamedParameters()) {
    if (name == "embedding.table") t2 = var;
    if (name == "embedding3.table") t3 = var;
  }
  ASSERT_TRUE(t2.defined());
  ASSERT_TRUE(t3.defined());
  const size_t d = cfg.embedding_dim;
  float expected = 0.0f;
  for (size_t a = 0; a < active.size(); ++a) {
    for (size_t b = a + 1; b < active.size(); ++b) {
      for (size_t j = 0; j < d; ++j) {
        expected += t2.value().at(active[a], j) * t2.value().at(active[b], j);
      }
      for (size_t c = b + 1; c < active.size(); ++c) {
        for (size_t j = 0; j < d; ++j) {
          expected += t3.value().at(active[a], j) *
                      t3.value().at(active[b], j) *
                      t3.value().at(active[c], j);
        }
      }
    }
  }
  EXPECT_NEAR(score, expected, 2e-3f);
}

// ---------------------------------------------------------------------------
// TFM: only the most recent item matters
// ---------------------------------------------------------------------------

TEST(TfmTest, OnlyLastHistoryItemAffectsScore) {
  data::FeatureSpace space(3, 8);
  Tfm tfm(space, SmallConfig());
  // Same last item (5), different earlier history.
  auto a = MakeBatch(space, 4, {{0, 1, 5}}, {1}, {6});
  auto b = MakeBatch(space, 4, {{3, 2, 5}}, {1}, {6});
  EXPECT_NEAR(tfm.Score(a, false).value().at(0, 0),
              tfm.Score(b, false).value().at(0, 0), 1e-5f);
  // Different last item must change the score.
  auto c = MakeBatch(space, 4, {{0, 1, 4}}, {1}, {6});
  EXPECT_GT(std::abs(tfm.Score(a, false).value().at(0, 0) -
                     tfm.Score(c, false).value().at(0, 0)),
            1e-6f);
}

// ---------------------------------------------------------------------------
// Sequence-awareness contrast across model families
// ---------------------------------------------------------------------------

TEST(SequenceAwarenessTest, SasRecIsOrderSensitiveButFmIsNot) {
  data::FeatureSpace space(3, 8);
  BaselineConfig cfg = SmallConfig();
  auto sasrec = CreateBaseline("SASRec", space, cfg).ValueOrDie();
  auto fm = CreateBaseline("FM", space, cfg).ValueOrDie();
  auto ab = MakeBatch(space, 4, {{0, 1, 2, 3}}, {1}, {4});
  auto ba = MakeBatch(space, 4, {{3, 1, 2, 0}}, {1}, {4});
  const float s1 = sasrec->Score(ab, false).value().at(0, 0);
  const float s2 = sasrec->Score(ba, false).value().at(0, 0);
  EXPECT_GT(std::abs(s1 - s2), 1e-7f);
  const float f1 = fm->Score(ab, false).value().at(0, 0);
  const float f2 = fm->Score(ba, false).value().at(0, 0);
  EXPECT_NEAR(f1, f2, 1e-4f);
}

}  // namespace
}  // namespace baselines
}  // namespace seqfm
