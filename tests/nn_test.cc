#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "nn/module.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace seqfm {
namespace nn {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable RandomInput(std::vector<size_t> shape, Rng* rng) {
  Tensor t(std::move(shape));
  tensor::FillNormal(&t, rng, 1.0f);
  return Variable::Constant(std::move(t));
}

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

class TinyModule : public Module {
 public:
  explicit TinyModule(Rng* rng) : child_(2, 3, rng) {
    w_ = RegisterParameter("w", Tensor::Ones({2, 2}));
    RegisterModule("child", &child_);
  }
  Variable w_;
  Linear child_;
};

TEST(ModuleTest, CollectsParametersDepthFirst) {
  Rng rng(40);
  TinyModule m(&rng);
  auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 3u);  // w + child weight + child bias
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "child.weight");
  EXPECT_EQ(named[2].first, "child.bias");
  EXPECT_EQ(m.NumParameters(), 4u + 6u + 3u);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(41);
  TinyModule m(&rng);
  Variable loss = autograd::SumAll(autograd::Mul(m.w_, m.w_));
  autograd::Backward(loss);
  EXPECT_NE(m.w_.grad().at(0, 0), 0.0f);
  m.ZeroGrad();
  EXPECT_EQ(m.w_.grad().at(0, 0), 0.0f);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(42);
  TinyModule a(&rng), b(&rng);
  a.w_.mutable_value().Fill(3.25f);
  const std::string path =
      (std::filesystem::temp_directory_path() / "seqfm_ckpt_test.bin").string();
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  EXPECT_EQ(b.w_.value().at(1, 1), 3.25f);
  for (size_t i = 0; i < a.child_.weight().value().size(); ++i) {
    EXPECT_EQ(b.child_.weight().value().data()[i],
              a.child_.weight().value().data()[i]);
  }
  std::remove(path.c_str());
}

TEST(ModuleTest, LoadRejectsMissingFile) {
  Rng rng(43);
  TinyModule m(&rng);
  EXPECT_FALSE(m.LoadParameters("/nonexistent/ckpt.bin").ok());
}

// ---------------------------------------------------------------------------
// Linear / Embedding / LayerNorm
// ---------------------------------------------------------------------------

TEST(LinearTest, Rank2AndRank3AgreeRowWise) {
  Rng rng(44);
  Linear fc(4, 3, &rng);
  Variable x2 = RandomInput({2, 4}, &rng);
  Variable y2 = fc.Forward(x2);
  // Same rows embedded in a rank-3 batch must give identical outputs.
  Tensor x3({1, 2, 4});
  for (size_t i = 0; i < 8; ++i) x3.data()[i] = x2.value().data()[i];
  Variable y3 = fc.Forward(Variable::Constant(std::move(x3)));
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y3.value().data()[i], y2.value().data()[i], 1e-5f);
  }
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(45);
  Linear fc(3, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(fc.Parameters().size(), 1u);
  Variable zero = Variable::Constant(Tensor::Zeros({2, 3}));
  Variable y = fc.Forward(zero);
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_EQ(y.value().data()[i], 0.0f);
  }
}

TEST(EmbeddingTest, GathersRowsAndZeroPads) {
  Rng rng(46);
  Embedding emb(5, 3, &rng);
  Variable out = emb.Forward({1, -1, 4, 1}, 2, 2);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out.value().at(0, 0, j), emb.table().value().at(1, j));
    EXPECT_EQ(out.value().at(0, 1, j), 0.0f);
    EXPECT_EQ(out.value().at(1, 1, j), emb.table().value().at(1, j));
  }
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(47);
  LayerNorm ln(8);
  Variable x = RandomInput({4, 8}, &rng);
  Variable y = ln.Forward(x);
  // With gamma=1, beta=0 each row has ~zero mean and ~unit variance.
  for (size_t i = 0; i < 4; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (size_t j = 0; j < 8; ++j) mean += y.value().at(i, j);
    mean /= 8.0f;
    for (size_t j = 0; j < 8; ++j) {
      const float c = y.value().at(i, j) - mean;
      var += c * c;
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

// ---------------------------------------------------------------------------
// Masks
// ---------------------------------------------------------------------------

TEST(MaskTest, CausalStructure) {
  Variable mask = MakeCausalMask(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i >= j) {
        EXPECT_EQ(mask.value().at(i, j), 0.0f);
      } else {
        EXPECT_TRUE(std::isinf(mask.value().at(i, j)));
      }
    }
  }
}

TEST(MaskTest, CrossMaskOnlyAllowsCrossCategory) {
  const size_t ns = 2, nd = 3;
  Variable mask = MakeCrossMask(ns, nd);
  for (size_t i = 0; i < ns + nd; ++i) {
    for (size_t j = 0; j < ns + nd; ++j) {
      const bool i_static = i < ns, j_static = j < ns;
      if (i_static != j_static) {
        EXPECT_EQ(mask.value().at(i, j), 0.0f) << i << "," << j;
      } else {
        EXPECT_TRUE(std::isinf(mask.value().at(i, j))) << i << "," << j;
      }
    }
  }
}

TEST(MaskTest, BatchPaddingMaskBlocksPaddingKeys) {
  // Sample 0: first position padded; sample 1: none padded.
  std::vector<int32_t> ids = {-1, 3, 2, 0, 1, 2};
  Variable mask = MakeBatchPaddingMask(ids, 2, 3, /*causal=*/true);
  ASSERT_EQ(mask.value().dim(0), 6u);
  // Sample 0 row 1 (i=1): may attend j=1 only (j=0 is padding, j=2 future).
  EXPECT_TRUE(std::isinf(mask.value().at(1, 0)));
  EXPECT_EQ(mask.value().at(1, 1), 0.0f);
  EXPECT_TRUE(std::isinf(mask.value().at(1, 2)));
  // Sample 0 row 0 is fully blocked -> diagonal fallback keeps it open.
  EXPECT_EQ(mask.value().at(0, 0), 0.0f);
  // Sample 1 row 2: causal allows all three.
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(mask.value().at(5, j), 0.0f);
}

// ---------------------------------------------------------------------------
// SelfAttention: the central causality property
// ---------------------------------------------------------------------------

TEST(SelfAttentionTest, OutputShapeAndDeterminism) {
  Rng rng(48);
  SelfAttention att(6, &rng);
  Variable e = RandomInput({2, 5, 6}, &rng);
  Variable h1 = att.Forward(e, Variable());
  Variable h2 = att.Forward(e, Variable());
  ASSERT_EQ(h1.value().shape(), (std::vector<size_t>{2, 5, 6}));
  for (size_t i = 0; i < h1.value().size(); ++i) {
    EXPECT_EQ(h1.value().data()[i], h2.value().data()[i]);
  }
}

TEST(SelfAttentionTest, CausalMaskMakesOutputsIgnoreTheFuture) {
  Rng rng(49);
  const size_t n = 6, d = 4;
  SelfAttention att(d, &rng);
  Variable mask = MakeCausalMask(n);

  Tensor base({1, n, d});
  Rng data_rng(50);
  tensor::FillNormal(&base, &data_rng, 1.0f);
  Variable h_base = att.Forward(Variable::Constant(base), mask);

  // Perturb only the last row; all earlier output rows must be unchanged.
  Tensor perturbed = base;
  for (size_t j = 0; j < d; ++j) perturbed.at(0, n - 1, j) += 5.0f;
  Variable h_pert = att.Forward(Variable::Constant(std::move(perturbed)), mask);

  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(h_base.value().at(0, i, j), h_pert.value().at(0, i, j),
                  1e-6f)
          << "row " << i << " saw the future";
    }
  }
  // The last row must change (it attends to itself).
  float diff = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    diff += std::abs(h_base.value().at(0, n - 1, j) -
                     h_pert.value().at(0, n - 1, j));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(SelfAttentionTest, CrossMaskBlocksSameCategoryInfluence) {
  Rng rng(51);
  const size_t ns = 2, nd = 3, d = 4;
  SelfAttention att(d, &rng);
  Variable mask = MakeCrossMask(ns, nd);

  Tensor base({1, ns + nd, d});
  Rng data_rng(52);
  tensor::FillNormal(&base, &data_rng, 1.0f);
  Variable h_base = att.Forward(Variable::Constant(base), mask);

  // Perturbing static row 1 must not change static row 0's output (static
  // rows only attend to dynamic rows).
  Tensor perturbed = base;
  for (size_t j = 0; j < d; ++j) perturbed.at(0, 1, j) += 3.0f;
  Variable h_pert = att.Forward(Variable::Constant(std::move(perturbed)), mask);
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(h_base.value().at(0, 0, j), h_pert.value().at(0, 0, j), 1e-6f);
  }
}

// ---------------------------------------------------------------------------
// ResidualFeedForward
// ---------------------------------------------------------------------------

TEST(ResidualFfnTest, ParameterCountScalesWithDepth) {
  Rng rng(53);
  ResidualFeedForward f1(8, 1, &rng), f3(8, 3, &rng);
  EXPECT_EQ(f1.Parameters().size(), 4u);
  EXPECT_EQ(f3.Parameters().size(), 12u);
}

TEST(ResidualFfnTest, ResidualPathPreservesInputWhenInnerIsZero) {
  Rng rng(54);
  ResidualFeedForward ffn(4, 1, &rng, /*use_residual=*/true,
                          /*use_layer_norm=*/true);
  // Zero the layer weight so the inner branch is ReLU(bias) = 0.
  auto params = ffn.NamedParameters();
  for (auto& [name, var] : params) {
    if (name == "w0" || name == "b0") var.mutable_value().Zero();
  }
  Rng data_rng(55);
  Variable x = RandomInput({3, 4}, &data_rng);
  Variable y = ffn.Forward(x, 1.0f, /*training=*/false, &rng);
  for (size_t i = 0; i < x.value().size(); ++i) {
    EXPECT_NEAR(y.value().data()[i], x.value().data()[i], 1e-6f);
  }
}

TEST(ResidualFfnTest, NoResidualDropsIdentityPath) {
  Rng rng(56);
  ResidualFeedForward ffn(4, 1, &rng, /*use_residual=*/false,
                          /*use_layer_norm=*/true);
  auto params = ffn.NamedParameters();
  for (auto& [name, var] : params) {
    if (name == "w0" || name == "b0") var.mutable_value().Zero();
  }
  Rng data_rng(57);
  Variable x = RandomInput({3, 4}, &data_rng);
  Variable y = ffn.Forward(x, 1.0f, false, &rng);
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_EQ(y.value().data()[i], 0.0f);
  }
}

TEST(ResidualFfnTest, EvalIsDeterministicDespiteDropout) {
  Rng rng(58);
  ResidualFeedForward ffn(6, 2, &rng);
  Rng data_rng(59);
  Variable x = RandomInput({2, 6}, &data_rng);
  Variable y1 = ffn.Forward(x, 0.5f, /*training=*/false, &rng);
  Variable y2 = ffn.Forward(x, 0.5f, /*training=*/false, &rng);
  for (size_t i = 0; i < y1.value().size(); ++i) {
    EXPECT_EQ(y1.value().data()[i], y2.value().data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Mlp & Gru
// ---------------------------------------------------------------------------

TEST(MlpTest, ShapesAndFinalLayerIsLinear) {
  Rng rng(60);
  Mlp mlp({5, 8, 1}, &rng);
  Rng data_rng(61);
  Variable x = RandomInput({3, 5}, &data_rng);
  Variable y = mlp.Forward(x, 1.0f, false, &rng);
  ASSERT_EQ(y.value().shape(), (std::vector<size_t>{3, 1}));
  // The final layer has no ReLU: negative outputs must be possible. With a
  // fixed seed just check outputs are not all clamped at >= 0 across seeds.
  bool saw_negative = false;
  for (int s = 0; s < 5 && !saw_negative; ++s) {
    Rng r2(100 + s);
    Variable x2 = RandomInput({8, 5}, &r2);
    Variable y2 = mlp.Forward(x2, 1.0f, false, &rng);
    for (size_t i = 0; i < y2.value().size(); ++i) {
      saw_negative |= y2.value().data()[i] < 0.0f;
    }
  }
  EXPECT_TRUE(saw_negative);
}

TEST(GruTest, FinalStateShapeAndSequenceSensitivity) {
  Rng rng(62);
  Gru gru(3, 5, &rng);
  Rng data_rng(63);
  Tensor seq_a({2, 4, 3});
  tensor::FillNormal(&seq_a, &data_rng, 1.0f);
  Tensor seq_b = seq_a;
  // Swap two timesteps of sample 0: GRU output must change (order matters).
  for (size_t j = 0; j < 3; ++j) {
    std::swap(seq_b.at(0, 0, j), seq_b.at(0, 3, j));
  }
  Variable ha = gru.Forward(Variable::Constant(std::move(seq_a)));
  Variable hb = gru.Forward(Variable::Constant(std::move(seq_b)));
  ASSERT_EQ(ha.value().shape(), (std::vector<size_t>{2, 5}));
  float diff0 = 0.0f, diff1 = 0.0f;
  for (size_t j = 0; j < 5; ++j) {
    diff0 += std::abs(ha.value().at(0, j) - hb.value().at(0, j));
    diff1 += std::abs(ha.value().at(1, j) - hb.value().at(1, j));
  }
  EXPECT_GT(diff0, 1e-4f);   // reordered sample changed
  EXPECT_NEAR(diff1, 0.0f, 1e-6f);  // untouched sample identical
}

TEST(GruTest, GradientsFlowToAllParameters) {
  Rng rng(64);
  Gru gru(2, 3, &rng);
  Rng data_rng(65);
  Variable seq = RandomInput({1, 3, 2}, &data_rng);
  Variable loss = autograd::SumAll(gru.Forward(seq));
  autograd::Backward(loss);
  for (const auto& p : gru.Parameters()) {
    float norm = 0.0f;
    for (size_t i = 0; i < p.grad().size(); ++i) {
      norm += std::abs(p.grad().data()[i]);
    }
    EXPECT_GT(norm, 0.0f);
  }
}

}  // namespace
}  // namespace nn
}  // namespace seqfm
