#ifndef SEQFM_TESTS_REPLICA_PROCESS_H_
#define SEQFM_TESTS_REPLICA_PROCESS_H_

// Shared multi-process test harness: fork/exec one seqfm_replica process
// (tools/replica_main.cc) and speak its tiny launch protocol. Used by the
// distributed parity suite (serve_dist_test) and the chaos suite
// (serve_chaos_test); compiled only into test binaries that define
// SEQFM_REPLICA_BIN to the replica executable's path.
//
// Lifecycle contract (mirrors replica_main.cc):
//   - the child's stdin is a pipe the parent holds open; EOF (Stop, or the
//     parent dying) requests a drain shutdown;
//   - the child prints "PORT <p>\n" once listening — with port=0 this is
//     how the parent learns the ephemeral port;
//   - Kill() SIGKILLs — the dead-replica scenario, no drain, no goodbye.

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace seqfm {
namespace testing_util {

/// Everything a replica process needs to come up. The model geometry fields
/// must match the reference model built in-process or the parameter
/// fingerprints (and the scores) diverge.
struct ReplicaProcessConfig {
  std::string checkpoint;
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  size_t users = 0;
  size_t items = 0;
  size_t dim = 16;
  size_t max_seq_len = 20;
  /// 0 = ephemeral (the child reports what it bound). A fixed port is the
  /// restart-after-kill scenario: the revived replica must come back at the
  /// address the coordinator's backend already holds.
  uint16_t port = 0;
  /// Value for the child's SEQFM_FAILPOINTS environment variable —
  /// server-side fault injection (replica_main arms it at startup). Empty
  /// clears the variable in the child, so replicas never accidentally
  /// inherit the parent test's fault schedule.
  std::string failpoints;
};

/// One fork/exec'd seqfm_replica process.
class ReplicaProcess {
 public:
  ReplicaProcess() = default;
  ReplicaProcess(const ReplicaProcess&) = delete;
  ReplicaProcess& operator=(const ReplicaProcess&) = delete;
  ~ReplicaProcess() { Stop(); }

  bool Launch(const ReplicaProcessConfig& config) {
    int in_pipe[2];   // parent writes -> child stdin
    int out_pipe[2];  // child stdout -> parent reads
    // O_CLOEXEC: without it, a later-launched replica inherits this one's
    // stdin write-end across exec and the EOF-means-shutdown contract
    // breaks — replica 0 would only drain after replica 1 exits. The
    // child's dup2 copies shed the flag, so its own stdio survives exec.
    if (pipe2(in_pipe, O_CLOEXEC) != 0 || pipe2(out_pipe, O_CLOEXEC) != 0) {
      return false;
    }
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      if (config.failpoints.empty()) {
        unsetenv("SEQFM_FAILPOINTS");
      } else {
        setenv("SEQFM_FAILPOINTS", config.failpoints.c_str(), 1);
      }
      const std::vector<std::string> args = {
          "--checkpoint=" + config.checkpoint,
          "--shard-index=" + std::to_string(config.shard_index),
          "--num-shards=" + std::to_string(config.num_shards),
          "--users=" + std::to_string(config.users),
          "--items=" + std::to_string(config.items),
          "--dim=" + std::to_string(config.dim),
          "--max-seq-len=" + std::to_string(config.max_seq_len),
          "--port=" + std::to_string(config.port),
      };
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(SEQFM_REPLICA_BIN));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(SEQFM_REPLICA_BIN, argv.data());
      _exit(127);  // exec failed
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    stdin_fd_ = in_pipe[1];
    stdout_fd_ = out_pipe[0];

    // Read "PORT <p>\n" — the replica prints it once listening.
    std::string line;
    char c;
    while (read(stdout_fd_, &c, 1) == 1 && c != '\n') line.push_back(c);
    if (line.rfind("PORT ", 0) != 0) return false;
    port_ = static_cast<uint16_t>(std::stoi(line.substr(5)));
    return port_ != 0;
  }

  /// SIGKILL — the dead-replica scenario. No drain, no goodbye.
  void Kill() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      Reap();
    }
  }

  /// Close stdin to request a drain shutdown, then reap.
  void Stop() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
    Reap();
    if (stdout_fd_ >= 0) {
      close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

  uint16_t port() const { return port_; }

 private:
  void Reap() {
    if (pid_ > 0) {
      int status = 0;
      waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace testing_util
}  // namespace seqfm

#endif  // SEQFM_TESTS_REPLICA_PROCESS_H_
