// Multi-process parity suite for distributed serving: real replica
// PROCESSES (tools/replica_main.cc, fork/exec'd per test), a real
// serve::Coordinator fanning out over TCP, and bit-identity against the
// single-process reference:
//   - for 1, 2 and 3 replica processes over the same checkpoint, the
//     coordinator's merged top-K equals ShardedPredictor::TopKAll (and
//     Predictor::TopKAll) bit for bit — tie-heavy catalog included, raw
//     score bits crossing process boundaries untouched;
//   - k larger than every shard's slice still merges exactly;
//   - SIGKILLing one replica degrades that fleet to PARTIAL with the
//     healthy shards' exact merge — bounded by the replica timeout, the
//     coordinator never hangs on a dead process;
//   - replicas that loaded DIFFERENT checkpoints disagree on the model
//     version fingerprint and Ready() refuses to merge across them.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/checkpoint.h"
#include "serve/coordinator.h"
#include "serve/predictor.h"
#include "serve/shard.h"
#include "tests/replica_process.h"
#include "util/logging.h"

namespace seqfm {
namespace {

using testing_util::ReplicaProcess;
using testing_util::ReplicaProcessConfig;

constexpr size_t kSeqLen = 6;
constexpr size_t kUsers = 5;
constexpr size_t kItems = 9;
constexpr size_t kDim = 8;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(kUsers, kItems); }

// The replica tool builds its model from exactly these two fields (all
// other SeqFmConfig fields at their defaults); the reference model here
// must match or the parameter fingerprints — and the scores — diverge.
core::SeqFmConfig ReplicaConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = kDim;
  cfg.max_seq_len = kSeqLen;
  cfg.seed = seed;
  return cfg;
}

std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};
  examples[1] = {2, 6, 0.5f, {5}};
  examples[2] = {3, 0, 2.0f, {}};
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

/// Forces items \p a and \p b to score bit-identically for every request —
/// applied BEFORE Save, so every replica process loads the tie-heavy
/// parameters and the cross-process merge must break ties by id alone.
void ForceScoreTie(core::SeqFm* model, const data::FeatureSpace& space,
                   int32_t a, int32_t b) {
  const auto view = model->serving_view();
  const size_t dim = model->config().embedding_dim;
  autograd::Variable table = view.static_embedding->table();
  float* rows = table.mutable_value().data();
  const size_t ra = static_cast<size_t>(space.CandidateIndex(a));
  const size_t rb = static_cast<size_t>(space.CandidateIndex(b));
  std::memcpy(rows + rb * dim, rows + ra * dim, dim * sizeof(float));
  autograd::Variable w_static = view.w_static;
  w_static.mutable_value().data()[rb] = w_static.value().data()[ra];
}

void ExpectSameRanking(const std::vector<serve::ScoredItem>& got,
                       const std::vector<serve::ScoredItem>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << context << " rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << context << " rank " << i;
  }
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// Launch config for one replica of this suite's small fleet (the shared
/// harness in tests/replica_process.h does the fork/exec).
ReplicaProcessConfig DistReplica(const std::string& checkpoint,
                                 uint32_t shard_index, uint32_t num_shards) {
  ReplicaProcessConfig config;
  config.checkpoint = checkpoint;
  config.shard_index = shard_index;
  config.num_shards = num_shards;
  config.users = kUsers;
  config.items = kItems;
  config.dim = kDim;
  config.max_seq_len = kSeqLen;
  return config;
}

/// Writes the shared tie-heavy checkpoint once per process; returns its
/// path. Every test's replicas and reference predictor load/build from the
/// same parameters.
const std::string& SharedCheckpoint() {
  static const std::string path = [] {
    const std::string p = TempPath("serve_dist_model.bin");
    data::FeatureSpace space = SmallSpace();
    core::SeqFm model(space, ReplicaConfig());
    ForceScoreTie(&model, space, 2, 7);
    ForceScoreTie(&model, space, 2, 4);
    SEQFM_CHECK(serve::Checkpoint::Save(model, p).ok());
    return p;
  }();
  return path;
}

serve::Coordinator MakeCoordinator() {
  serve::CoordinatorOptions opts;
  opts.replica_timeout_ms = 10000;  // generous: parity, not latency, is
  opts.connect_timeout_ms = 10000;  // under test here
  return serve::Coordinator(opts);
}

class DistServingTest : public ::testing::Test {
 protected:
  DistServingTest()
      : space_(SmallSpace()), builder_(space_, kSeqLen),
        model_(space_, ReplicaConfig()) {
    SEQFM_CHECK(
        serve::Checkpoint::Load(&model_, SharedCheckpoint()).ok());
    predictor_ = std::make_unique<serve::Predictor>(&model_, &builder_);
  }

  data::FeatureSpace space_;
  data::BatchBuilder builder_;
  core::SeqFm model_;
  std::unique_ptr<serve::Predictor> predictor_;
};

TEST_F(DistServingTest, CoordinatorMatchesSingleProcessForAllFleetSizes) {
  for (uint32_t shards : {1u, 2u, 3u}) {
    std::vector<std::unique_ptr<ReplicaProcess>> fleet;
    serve::Coordinator coord = MakeCoordinator();
    for (uint32_t s = 0; s < shards; ++s) {
      fleet.push_back(std::make_unique<ReplicaProcess>());
      ASSERT_TRUE(fleet.back()->Launch(DistReplica(SharedCheckpoint(), s,
                                                   shards)))
          << "replica " << s << "/" << shards << " failed to launch";
      ASSERT_TRUE(
          coord.AddReplica("127.0.0.1", fleet.back()->port()).ok());
    }
    ASSERT_TRUE(coord.Ready().ok());
    EXPECT_EQ(coord.model_version(), serve::ParameterVersion(model_));

    serve::ShardedPredictorOptions sp_opts;
    sp_opts.num_shards = shards;
    serve::ShardedPredictor sharded(predictor_.get(), sp_opts);

    for (const auto& ex : TestExamples()) {
      // k = 5 exceeds every 3-shard slice (size 3); k = kItems + 3 exceeds
      // the whole catalog.
      for (size_t k : {1ul, 5ul, kItems, kItems + 3}) {
        serve::CoordinatorResult result;
        ASSERT_TRUE(coord.TopKAll(ex, k, &result).ok());
        EXPECT_EQ(result.status, serve::RpcStatus::kOk);
        EXPECT_EQ(result.shards_merged, shards);
        const std::string ctx = "shards=" + std::to_string(shards) +
                                " user=" + std::to_string(ex.user) +
                                " k=" + std::to_string(k);
        ExpectSameRanking(result.items, sharded.TopKAll(ex, k),
                          ctx + " vs ShardedPredictor");
        ExpectSameRanking(result.items, predictor_->TopKAll(ex, k),
                          ctx + " vs Predictor");
      }
    }
  }
}

TEST_F(DistServingTest, KilledReplicaDegradesToPartialMergeOfSurvivors) {
  const uint32_t shards = 3;
  std::vector<std::unique_ptr<ReplicaProcess>> fleet;
  serve::Coordinator coord = MakeCoordinator();
  for (uint32_t s = 0; s < shards; ++s) {
    fleet.push_back(std::make_unique<ReplicaProcess>());
    ASSERT_TRUE(fleet.back()->Launch(DistReplica(SharedCheckpoint(), s,
                                                 shards)));
    ASSERT_TRUE(coord.AddReplica("127.0.0.1", fleet.back()->port()).ok());
  }
  ASSERT_TRUE(coord.Ready().ok());

  // Healthy first — proves the fleet works before the failure is injected.
  const data::SequenceExample ex = TestExamples()[0];
  const size_t k = 4;
  serve::CoordinatorResult healthy;
  ASSERT_TRUE(coord.TopKAll(ex, k, &healthy).ok());
  ASSERT_EQ(healthy.status, serve::RpcStatus::kOk);

  fleet[1]->Kill();  // no drain, no goodbye: shard 1 is simply gone

  serve::CoordinatorResult degraded;
  ASSERT_TRUE(coord.TopKAll(ex, k, &degraded).ok());
  EXPECT_EQ(degraded.status, serve::RpcStatus::kPartial);
  EXPECT_EQ(degraded.shards_total, shards);
  EXPECT_EQ(degraded.shards_merged, shards - 1);

  // The survivors' merge, computed in-process from the same parameters.
  const std::vector<size_t> bounds =
      serve::ShardedCatalog::Bounds(kItems, shards);
  serve::LocalShardBackend local(predictor_.get());
  std::vector<serve::ScoreJob> jobs;
  for (uint32_t s = 0; s < shards; ++s) {
    if (s == 1) continue;
    serve::ScoreJob job;
    job.ex = &ex;
    job.begin = bounds[s];
    job.end = bounds[s + 1];
    job.k = std::min(k, job.end - job.begin);
    jobs.push_back(job);
  }
  std::vector<std::vector<serve::RankEntry>> runs;
  ASSERT_TRUE(local.ScoreTopK(jobs, &runs).ok());
  ExpectSameRanking(degraded.items, serve::MergeSortedRuns(runs, k),
                    "survivor merge");
}

TEST_F(DistServingTest, ReplicasOnDifferentCheckpointsAreRefused) {
  // A second checkpoint with different parameters — a fleet mid-rollout.
  const std::string other = TempPath("serve_dist_model_v2.bin");
  {
    core::SeqFm model(space_, ReplicaConfig(/*seed=*/999));
    ASSERT_TRUE(serve::Checkpoint::Save(model, other).ok());
  }

  ReplicaProcess a;
  ReplicaProcess b;
  ASSERT_TRUE(a.Launch(DistReplica(SharedCheckpoint(), 0, 2)));
  ASSERT_TRUE(b.Launch(DistReplica(other, 1, 2)));

  serve::Coordinator coord = MakeCoordinator();
  ASSERT_TRUE(coord.AddReplica("127.0.0.1", a.port()).ok());
  ASSERT_TRUE(coord.AddReplica("127.0.0.1", b.port()).ok());
  const Status st = coord.Ready();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("model version mismatch"), std::string::npos)
      << st.ToString();
  std::remove(other.c_str());
}

}  // namespace
}  // namespace seqfm
