#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad dim");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status FailingHelper() { return Status::IoError("disk"); }

Status PropagationSite() {
  SEQFM_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagationSite().code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  SEQFM_ASSIGN_OR_RETURN(int h, HalfOf(x));
  return HalfOf(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(10);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(15);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Split();
  // Child continues deterministically but differs from the parent stream.
  Rng parent2(17);
  Rng child2 = parent2.Split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  }
}

TEST(RngTest, SplitNChildrenAreDeterministic) {
  Rng a(77), b(77);
  auto kids_a = a.SplitN(5);
  auto kids_b = b.SplitN(5);
  ASSERT_EQ(kids_a.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    for (int d = 0; d < 20; ++d) {
      EXPECT_EQ(kids_a[i].NextUint64(), kids_b[i].NextUint64());
    }
  }
}

TEST(RngTest, SplitNChildrenAreMutuallyIndependent) {
  Rng parent(78);
  auto kids = parent.SplitN(4);
  // Sibling streams (and the continued parent stream) should not collide.
  for (size_t i = 0; i < kids.size(); ++i) {
    for (size_t j = i + 1; j < kids.size(); ++j) {
      Rng x = kids[i], y = kids[j];
      int same = 0;
      for (int d = 0; d < 64; ++d) same += (x.NextUint64() == y.NextUint64());
      EXPECT_LT(same, 2) << "children " << i << " and " << j;
    }
  }
  Rng child = kids[0];
  int same = 0;
  for (int d = 0; d < 64; ++d) {
    same += (parent.NextUint64() == child.NextUint64());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsSurviveUniformity) {
  // The hardened Split() must still give statistically uniform children.
  Rng parent(79);
  auto kids = parent.SplitN(8);
  for (auto& kid : kids) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += kid.Uniform();
    EXPECT_NEAR(total / n, 0.5, 0.02);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<int> hits(n, 0);
  pool.ParallelFor(0, n, 1024, [&hits](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.ParallelFor(0, 100, 1, [&](size_t, size_t) {
    same_thread = same_thread && (std::this_thread::get_id() == caller);
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPoolTest, SmallRangesStaySerialOnCaller) {
  util::ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> same_thread{true};
  // n <= grain -> must run inline on the calling thread.
  pool.ParallelFor(0, 100, 100, [&](size_t, size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread.load());
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCoversRange) {
  util::ThreadPool pool(4);
  const size_t outer = 64, inner = 64;
  std::vector<int> hits(outer * inner, 0);
  pool.ParallelFor(0, outer, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      pool.ParallelFor(0, inner, 1, [&, i](size_t ib, size_t ie) {
        for (size_t j = ib; j < ie; ++j) ++hits[i * inner + j];
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
}

TEST(ThreadPoolTest, BackToBackRegionsWork) {
  util::ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 1000, 10, [&total](size_t b, size_t e) {
      total += e - b;
    });
  }
  EXPECT_EQ(total.load(), 50u * 1000u);
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  util::SetGlobalThreads(3);
  EXPECT_EQ(util::GlobalThreads(), 3u);
  util::SetGlobalThreads(1);
  EXPECT_EQ(util::GlobalThreads(), 1u);
}

TEST(ThreadPoolTest, SetGlobalThreadsKeepsPoolReferenceValid) {
  // SetGlobalThreads must resize the pool in place: long-lived ThreadPool&
  // handles from GlobalPool() (the old implementation destroyed and
  // replaced the object, leaving them dangling) stay usable.
  util::SetGlobalThreads(2);
  util::ThreadPool& held = util::GlobalPool();
  util::SetGlobalThreads(4);
  EXPECT_EQ(&util::GlobalPool(), &held);
  EXPECT_EQ(held.num_threads(), 4u);
  std::atomic<size_t> covered{0};
  held.ParallelFor(0, 1000, 10,
                   [&covered](size_t b, size_t e) { covered += e - b; });
  EXPECT_EQ(covered.load(), 1000u);
  util::SetGlobalThreads(1);
  EXPECT_EQ(&util::GlobalPool(), &held);
}

TEST(ThreadPoolTest, ResizeWhileOtherThreadsRunParallelForIsSafe) {
  // Regression for the SetGlobalThreads use-after-free window: resizing
  // drains the active region instead of destroying the pool under running
  // ParallelFor calls. Meaningful failure mode under ASan/TSan.
  util::SetGlobalThreads(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> users;
  for (int t = 0; t < 3; ++t) {
    users.emplace_back([&stop]() {
      util::ThreadPool& pool = util::GlobalPool();  // held across resizes
      while (!stop.load(std::memory_order_relaxed)) {
        std::atomic<size_t> covered{0};
        pool.ParallelFor(0, 4096, 64,
                         [&covered](size_t b, size_t e) { covered += e - b; });
        EXPECT_EQ(covered.load(), 4096u);
      }
    });
  }
  for (size_t n : {1u, 3u, 2u, 4u, 1u, 4u, 2u, 1u}) {
    util::SetGlobalThreads(n);
    EXPECT_EQ(util::GlobalThreads(), n);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& u : users) u.join();
  util::SetGlobalThreads(1);
}

TEST(ThreadPoolDeathTest, ResizeFromInsidePoolWorkDies) {
  // Resizing from a pool task would self-deadlock on the region lock; the
  // check must fire before the lock is touched.
  EXPECT_DEATH(
      {
        util::ThreadPool pool(2);
        pool.ParallelFor(0, 16, 1, [&pool](size_t, size_t) { pool.Resize(3); });
      },
      "inside pool work");
}

TEST(ThreadPoolTest, DefaultThreadsRejectsMalformedEnv) {
  const char* old = std::getenv("SEQFM_THREADS");
  const std::string saved = old ? old : "";
  unsetenv("SEQFM_THREADS");
  const size_t fallback = util::DefaultThreads();  // hardware concurrency

  setenv("SEQFM_THREADS", "5", 1);
  EXPECT_EQ(util::DefaultThreads(), 5u);
  // Trailing garbage must not silently parse as the leading digits.
  setenv("SEQFM_THREADS", "5garbage", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);
  setenv("SEQFM_THREADS", "4.5", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);
  setenv("SEQFM_THREADS", "garbage", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);
  setenv("SEQFM_THREADS", "", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);
  setenv("SEQFM_THREADS", "0", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);
  setenv("SEQFM_THREADS", "-2", 1);
  EXPECT_EQ(util::DefaultThreads(), fallback);

  if (old) {
    setenv("SEQFM_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("SEQFM_THREADS");
  }
}

// ---------------------------------------------------------------------------
// FNV-1a (util/hash.h)
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(util::Fnv1a64("", 0), util::kFnv64Offset);
  EXPECT_EQ(util::Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(HashTest, FnvUpdateStreamsLikeOneShot) {
  const char data[] = "abcdef";
  uint64_t streamed = util::kFnv64Offset;
  streamed = util::FnvUpdate(streamed, data, 2);
  streamed = util::FnvUpdate(streamed, data + 2, 4);
  EXPECT_EQ(streamed, util::Fnv1a64(data, 6));
}

TEST(ZipfSamplerTest, LowIndicesAreMorePopular) {
  Rng rng(18);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

// ---------------------------------------------------------------------------
// FlagParser
// ---------------------------------------------------------------------------

TEST(FlagParserTest, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--epochs=7", "--lr=0.5", "--verbose",
                        "--name=gowalla", "positional"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(6, argv).ok());
  EXPECT_EQ(flags.GetInt("epochs", 0), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "gowalla");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, ExplicitFalse) {
  const char* argv[] = {"prog", "--verbose=false", "--x=0"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_FALSE(flags.GetBool("verbose", true));
  EXPECT_FALSE(flags.GetBool("x", true));
}

TEST(FlagParserTest, RejectsMalformed) {
  const char* argv1[] = {"prog", "--"};
  FlagParser f1;
  EXPECT_FALSE(f1.Parse(2, argv1).ok());
  const char* argv2[] = {"prog", "--=3"};
  FlagParser f2;
  EXPECT_FALSE(f2.Parse(2, argv2).ok());
}

TEST(FlagParserTest, MalformedNumericValuesFallBackToDefault) {
  // strtoll/strtod with a null endptr used to accept "4garbage" as 4 and
  // silently clamp overflow; every malformed token must now warn and use
  // the caller's default instead (the SEQFM_THREADS policy).
  const char* argv[] = {"prog",
                        "--trailing=4garbage",
                        "--empty=",
                        "--words=abc",
                        "--overflow=99999999999999999999999999",
                        "--underflow=-99999999999999999999999999",
                        "--dbl-trailing=0.5x",
                        "--dbl-overflow=1e999999",
                        "--bare"};  // bare flag: value is the string "true"
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(9, argv).ok());
  EXPECT_EQ(flags.GetInt("trailing", 7), 7);
  EXPECT_EQ(flags.GetInt("empty", 7), 7);
  EXPECT_EQ(flags.GetInt("words", 7), 7);
  EXPECT_EQ(flags.GetInt("overflow", 7), 7);
  EXPECT_EQ(flags.GetInt("underflow", 7), 7);
  EXPECT_EQ(flags.GetInt("bare", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("trailing", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("dbl-trailing", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("dbl-overflow", 0.25), 0.25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("empty", 0.25), 0.25);
}

TEST(FlagParserTest, WellFormedNumericValuesStillParse) {
  const char* argv[] = {"prog", "--neg=-12", "--zero=0", "--big=123456789012",
                        "--sci=2.5e-3", "--negf=-0.75", "--inf=1e308"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(7, argv).ok());
  EXPECT_EQ(flags.GetInt("neg", 0), -12);
  EXPECT_EQ(flags.GetInt("zero", 9), 0);
  EXPECT_EQ(flags.GetInt("big", 0), 123456789012LL);
  EXPECT_DOUBLE_EQ(flags.GetDouble("sci", 0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("negf", 0.0), -0.75);
  EXPECT_DOUBLE_EQ(flags.GetDouble("inf", 0.0), 1e308);
}

// ---------------------------------------------------------------------------
// bench::Percentile (nearest-rank; shared by bench_serving / bench_loadgen)
// ---------------------------------------------------------------------------

TEST(PercentileTest, NearestRankOnKnownVectors) {
  // 1..100: nearest-rank pN is exactly N. The pre-fix q*n indexing returned
  // 100 (the max) for p99 here — the regression this test locks down.
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i + 1);
  EXPECT_DOUBLE_EQ(bench::Percentile(&v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(bench::Percentile(&v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(bench::Percentile(&v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(bench::Percentile(&v, 1.0), 100.0);
  // p999 with only 100 samples is the max by construction.
  EXPECT_DOUBLE_EQ(bench::Percentile(&v, 0.999), 100.0);
}

TEST(PercentileTest, SmallAndDegenerateInputs) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(bench::Percentile(&empty, 0.99), 0.0);
  std::vector<double> one = {3.5};
  EXPECT_DOUBLE_EQ(bench::Percentile(&one, 0.01), 3.5);
  EXPECT_DOUBLE_EQ(bench::Percentile(&one, 0.99), 3.5);
  // Two samples: p50 is the first (rank ceil(0.5*2)=1), p99 the second.
  std::vector<double> two = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(bench::Percentile(&two, 0.50), 10.0);
  EXPECT_DOUBLE_EQ(bench::Percentile(&two, 0.99), 20.0);
}

TEST(PercentileTest, SortsInPlaceAndScalesToMs) {
  std::vector<double> v = {0.003, 0.001, 0.002};  // seconds, unsorted
  EXPECT_DOUBLE_EQ(bench::PercentileMs(&v, 0.50), 2.0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  // p999 across 1000 samples picks rank 999 of 1000, not the max.
  std::vector<double> big(1000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i + 1);
  EXPECT_DOUBLE_EQ(bench::Percentile(&big, 0.999), 999.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMillis(), w.ElapsedSeconds() * 1000.0 * 0.99);
}

// ---------------------------------------------------------------------------
// OrderedMutex: the lock-rank checker behind the serve layer's deadlock
// freedom (see util::lock_rank in ordered_mutex.h)
// ---------------------------------------------------------------------------

TEST(OrderedMutexTest, InRankOrderAcquisitionSucceeds) {
  util::OrderedMutex outer("test::outer", 100);
  util::OrderedMutex inner("test::inner", 200);
  {
    util::OrderedMutexLock a(outer);
    util::OrderedMutexLock b(inner);  // 100 -> 200: legal nesting
  }
  // Both released: re-acquiring either alone is fine.
  util::OrderedMutexLock again(outer);
}

TEST(OrderedMutexTest, ReleaseOrderNeedNotMirrorAcquisitionOrder) {
  util::OrderedMutex outer("test::outer", 100);
  util::OrderedMutex inner("test::inner", 200);
  outer.lock();
  inner.lock();
  outer.unlock();  // release outer first, inner stays held
  // With only rank 200 held, a new rank-300 acquisition is still legal.
  util::OrderedMutex next("test::next", 300);
  next.lock();
  next.unlock();
  inner.unlock();
}

TEST(OrderedMutexTest, RanksAreCheckedPerThread) {
  // A thread's held ranks do not leak into another thread: while this
  // thread holds rank 200, a second thread may freely take rank 100.
  util::OrderedMutex high("test::high", 200);
  util::OrderedMutex low("test::low", 100);
  util::OrderedMutexLock hold(high);
  std::thread other([&]() { util::OrderedMutexLock ok(low); });
  other.join();
}

TEST(OrderedMutexDeathTest, RankInversionDiesNamingBothLocks) {
  util::OrderedMutex outer("test::outer", 100);
  util::OrderedMutex inner("test::inner", 200);
  EXPECT_DEATH(
      {
        util::OrderedMutexLock a(inner);
        util::OrderedMutexLock b(outer);  // 200 -> 100: inversion
      },
      "lock-rank inversion: acquiring 'test::outer' \\(rank 100\\) while "
      "holding 'test::inner' \\(rank 200\\)");
}

TEST(OrderedMutexDeathTest, SameRankReentryDies) {
  util::OrderedMutex a("test::a", 100);
  util::OrderedMutex b("test::b", 100);
  // Equal ranks forbid nesting in either direction — including re-entrant
  // acquisition of the same mutex, which would self-deadlock.
  EXPECT_DEATH(
      {
        util::OrderedMutexLock first(a);
        util::OrderedMutexLock second(b);
      },
      "lock-rank inversion");
  EXPECT_DEATH(
      {
        util::OrderedMutexLock first(a);
        a.lock();
      },
      "lock-rank inversion");
}

TEST(OrderedMutexDeathTest, ReleasingAnUnheldLockDies) {
  util::OrderedMutex mu("test::mu", 100);
  EXPECT_DEATH(mu.unlock(),
               "releasing 'test::mu' which this thread does not hold");
}

// ---------------------------------------------------------------------------
// FailPoint: deterministic fault injection
// ---------------------------------------------------------------------------

class FailPointTest : public ::testing::Test {
 protected:
  ~FailPointTest() override { util::FailPoint::DisarmAll(); }
};

TEST_F(FailPointTest, DisarmedSitesTriggerZero) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(util::FailPoint::Trigger("never.armed"), 0);
  }
  EXPECT_EQ(util::FailPoint::Stats("never.armed").hits, 0u);
}

TEST_F(FailPointTest, NthModeFailsExactlyTheNthHit) {
  util::FailPoint::Spec spec;
  spec.mode = util::FailPoint::Mode::kNth;
  spec.n = 3;
  spec.error = 42;
  util::FailPoint::Arm("t.nth", spec);
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) got.push_back(util::FailPoint::Trigger("t.nth"));
  EXPECT_EQ(got, (std::vector<int>{0, 0, 42, 0, 0, 0}));
  const auto stats = util::FailPoint::Stats("t.nth");
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST_F(FailPointTest, EveryKModeFailsPeriodically) {
  util::FailPoint::Spec spec;
  spec.mode = util::FailPoint::Mode::kEveryK;
  spec.n = 2;
  util::FailPoint::Arm("t.every", spec);
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) {
    got.push_back(util::FailPoint::Trigger("t.every"));
  }
  EXPECT_EQ(got, (std::vector<int>{0, 5, 0, 5, 0, 5}));  // default err = EIO
}

TEST_F(FailPointTest, ProbModeIsAPureFunctionOfSeedAndHitIndex) {
  util::FailPoint::Spec spec;
  spec.mode = util::FailPoint::Mode::kProb;
  spec.p = 0.5;
  spec.seed = 1234;
  util::FailPoint::Arm("t.prob", spec);
  std::vector<int> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(util::FailPoint::Trigger("t.prob"));
  }
  // Re-arming with the same seed resets the stream: identical sequence.
  util::FailPoint::Arm("t.prob", spec);
  std::vector<int> second;
  for (int i = 0; i < 64; ++i) {
    second.push_back(util::FailPoint::Trigger("t.prob"));
  }
  EXPECT_EQ(first, second);
  // And it actually mixes failures and passes at p = 0.5 over 64 draws.
  EXPECT_GT(util::FailPoint::Stats("t.prob").failures, 0u);
  EXPECT_LT(util::FailPoint::Stats("t.prob").failures, 64u);
}

TEST_F(FailPointTest, LimitBoundsInjectedFailuresThenHeals) {
  util::FailPoint::Spec spec;
  spec.mode = util::FailPoint::Mode::kEveryK;
  spec.n = 1;  // every hit would fail...
  spec.limit = 2;  // ...but the burst heals after two
  util::FailPoint::Arm("t.limit", spec);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (util::FailPoint::Trigger("t.limit") != 0) ++failures;
  }
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(util::FailPoint::Stats("t.limit").failures, 2u);
  EXPECT_EQ(util::FailPoint::Stats("t.limit").hits, 10u);
}

TEST_F(FailPointTest, ArmFromStringParsesTheSpecGrammar) {
  EXPECT_TRUE(util::FailPoint::ArmFromString("a.b=nth:2"));
  EXPECT_TRUE(util::FailPoint::ArmFromString("c.d=every:5:err=110"));
  EXPECT_TRUE(
      util::FailPoint::ArmFromString("e.f=prob:0.25:seed=7:limit=3"));
  const auto sites = util::FailPoint::ArmedSites();
  EXPECT_EQ(sites.size(), 3u);

  EXPECT_EQ(util::FailPoint::Trigger("a.b"), 0);
  EXPECT_EQ(util::FailPoint::Trigger("a.b"), 5);     // nth:2, default err
  EXPECT_EQ(util::FailPoint::Trigger("c.d"), 0);
  for (int i = 0; i < 3; ++i) util::FailPoint::Trigger("c.d");
  EXPECT_EQ(util::FailPoint::Trigger("c.d"), 110);   // hit 5 of every:5

  // Malformed specs arm nothing and say so.
  EXPECT_FALSE(util::FailPoint::ArmFromString(""));
  EXPECT_FALSE(util::FailPoint::ArmFromString("no-equals"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("=nth:1"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=badmode:1"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=nth:0"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=nth:abc"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=prob:1.5"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=nth:1:bogus=2"));
  EXPECT_FALSE(util::FailPoint::ArmFromString("x=nth:1:seed="));
  EXPECT_EQ(util::FailPoint::ArmedSites().size(), 3u);
}

TEST_F(FailPointTest, ArmFromEnvArmsEverySpecAndSkipsMalformed) {
  setenv("SEQFM_FAILPOINTS", "p.q=nth:1;;bad spec;r.s=every:2:err=71", 1);
  EXPECT_EQ(util::FailPoint::ArmFromEnv(), 2);
  unsetenv("SEQFM_FAILPOINTS");
  EXPECT_EQ(util::FailPoint::Trigger("p.q"), 5);
  util::FailPoint::Trigger("r.s");
  EXPECT_EQ(util::FailPoint::Trigger("r.s"), 71);
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    util::FailPoint::Spec spec;
    spec.mode = util::FailPoint::Mode::kNth;
    spec.n = 1;
    util::ScopedFailPoint fp("t.scoped", spec);
    EXPECT_EQ(util::FailPoint::Trigger("t.scoped"), 5);
  }
  EXPECT_EQ(util::FailPoint::Trigger("t.scoped"), 0);
  EXPECT_TRUE(util::FailPoint::ArmedSites().empty());
}

}  // namespace
}  // namespace seqfm
