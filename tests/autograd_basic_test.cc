#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/init.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace autograd {
namespace {

using tensor::Tensor;

Variable LeafFrom(std::vector<size_t> shape, std::vector<float> vals,
                  bool requires_grad = true) {
  return Variable::Leaf(
      Tensor::FromVector(std::move(shape), std::move(vals)).ValueOrDie(),
      requires_grad);
}

TEST(VariableTest, LeafProperties) {
  Variable v = LeafFrom({2}, {1, 2});
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.dim(0), 2u);
  Variable c = Variable::Constant(Tensor::Ones({3}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, RequiresGradPropagatesThroughOps) {
  Variable a = LeafFrom({2}, {1, 2}, /*requires_grad=*/true);
  Variable b = LeafFrom({2}, {3, 4}, /*requires_grad=*/false);
  EXPECT_TRUE(Add(a, b).requires_grad());
  EXPECT_FALSE(Add(b, b).requires_grad());
}

TEST(BackwardTest, SimpleChainRule) {
  // f = sum(3 * x), df/dx = 3.
  Variable x = LeafFrom({3}, {1, 2, 3});
  Variable loss = SumAll(Scale(x, 3.0f));
  Backward(loss);
  for (size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad().at(i), 3.0f);
}

TEST(BackwardTest, GradientAccumulatesAcrossFanOut) {
  // f = sum(x + x): each element contributes twice.
  Variable x = LeafFrom({2}, {5, -1});
  Variable loss = SumAll(Add(x, x));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), 2.0f);
}

TEST(BackwardTest, MulProductRule) {
  Variable a = LeafFrom({2}, {2, 3});
  Variable b = LeafFrom({2}, {5, 7});
  Backward(SumAll(Mul(a, b)));
  EXPECT_FLOAT_EQ(a.grad().at(0), 5.0f);
  EXPECT_FLOAT_EQ(a.grad().at(1), 7.0f);
  EXPECT_FLOAT_EQ(b.grad().at(0), 2.0f);
  EXPECT_FLOAT_EQ(b.grad().at(1), 3.0f);
}

TEST(BackwardTest, ConstantsReceiveNoGradient) {
  Variable x = LeafFrom({2}, {1, 2});
  Variable c = Variable::Constant(Tensor::Ones({2}));
  Variable loss = SumAll(Mul(x, c));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().at(0), 1.0f);
  // Constant's grad buffer stays zero (allocated lazily on read).
  EXPECT_FLOAT_EQ(c.grad().at(0), 0.0f);
}

TEST(BackwardTest, ZeroGradResets) {
  Variable x = LeafFrom({1}, {4});
  Backward(SumAll(Mul(x, x)));
  EXPECT_FLOAT_EQ(x.grad().at(0), 8.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.0f);
  Backward(SumAll(Mul(x, x)));
  EXPECT_FLOAT_EQ(x.grad().at(0), 8.0f);  // no stale accumulation
}

TEST(BackwardTest, DiamondGraphAccumulatesOnce) {
  // y = x*x; loss = sum(y + y) -> dx = 2 * 2x.
  Variable x = LeafFrom({1}, {3});
  Variable y = Mul(x, x);
  Backward(SumAll(Add(y, y)));
  EXPECT_FLOAT_EQ(x.grad().at(0), 12.0f);
}

TEST(BackwardTest, MeanAllScalesGradient) {
  Variable x = LeafFrom({4}, {1, 2, 3, 4});
  Backward(MeanAll(x));
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad().at(i), 0.25f);
}

TEST(GraphTest, GraphSizeCountsNodes) {
  Variable x = LeafFrom({2}, {1, 2});
  EXPECT_EQ(GraphSize(x), 1u);
  Variable y = Add(x, x);
  EXPECT_EQ(GraphSize(y), 2u);
  Variable z = SumAll(Mul(y, y));
  EXPECT_EQ(GraphSize(z), 4u);
}

TEST(GraphTest, GraphFreedWhenRootDropped) {
  Variable x = LeafFrom({2}, {1, 2});
  std::weak_ptr<Node> watch;
  {
    Variable y = Add(x, x);
    watch = y.node();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // op node freed, leaf survives
  EXPECT_TRUE(x.defined());
}

TEST(EmbeddingGatherTest, PaddingRowsAreZeroAndSkipGradient) {
  Variable table = LeafFrom({3, 2}, {1, 2, 3, 4, 5, 6});
  std::vector<int32_t> idx = {0, -1, 2, 2};
  Variable out = EmbeddingGather(table, idx, /*batch=*/2, /*n=*/2);
  EXPECT_EQ(out.value().at(0, 0, 0), 1.0f);
  EXPECT_EQ(out.value().at(0, 1, 0), 0.0f);  // padding
  EXPECT_EQ(out.value().at(0, 1, 1), 0.0f);
  EXPECT_EQ(out.value().at(1, 0, 1), 6.0f);
  Backward(SumAll(out));
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(table.grad().at(1, 0), 0.0f);  // index 1 never used
  EXPECT_FLOAT_EQ(table.grad().at(2, 0), 2.0f);  // used twice
}

TEST(EmbeddingSumGatherTest, SumsPerSample) {
  Variable w = LeafFrom({4, 1}, {1, 10, 100, 1000});
  std::vector<int32_t> idx = {0, 2, -1, 3};
  Variable out = EmbeddingSumGather(w, idx, /*batch=*/2, /*n=*/2);
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 101.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 0), 1000.0f);
  Backward(SumAll(out));
  EXPECT_FLOAT_EQ(w.grad().at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(w.grad().at(3, 0), 1.0f);
}

TEST(LossTest, BprLossValueMatchesFormula) {
  Variable pos = LeafFrom({2, 1}, {2.0f, 0.0f});
  Variable neg = LeafFrom({2, 1}, {0.0f, 0.0f});
  Variable loss = BprLoss(pos, neg);
  const float expected =
      0.5f * (-std::log(1.0f / (1.0f + std::exp(-2.0f))) - std::log(0.5f));
  EXPECT_NEAR(loss.value().at(0), expected, 1e-5f);
}

TEST(LossTest, BceMatchesCrossEntropy) {
  Variable logits = LeafFrom({2, 1}, {0.0f, 3.0f});
  Variable loss = BceWithLogitsLoss(logits, {1.0f, 0.0f});
  const float p0 = 0.5f, p1 = 1.0f / (1.0f + std::exp(-3.0f));
  const float expected = 0.5f * (-std::log(p0) - std::log(1.0f - p1));
  EXPECT_NEAR(loss.value().at(0), expected, 1e-5f);
}

TEST(LossTest, MseMatchesMeanSquare) {
  Variable pred = LeafFrom({2, 1}, {1.0f, -1.0f});
  Variable loss = MseLoss(pred, {3.0f, 0.0f});
  EXPECT_NEAR(loss.value().at(0), (4.0f + 1.0f) / 2.0f, 1e-6f);
}

TEST(LossTest, BceIsStableAtExtremeLogits) {
  Variable logits = LeafFrom({2, 1}, {80.0f, -80.0f});
  Variable loss = BceWithLogitsLoss(logits, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(loss.value().at(0)));
  Backward(loss);
  EXPECT_TRUE(std::isfinite(logits.grad().at(0, 0)));
}

TEST(DropoutTest, LargeMaskIdenticalAcrossThreadCounts) {
  // Tensors past the parallel cutoff generate their mask from per-chunk
  // Rng::SplitN streams; the mask must depend only on the seed, never on
  // how many pool threads filled it.
  const size_t n = 50000;
  auto mask_with_threads = [n](size_t threads) {
    util::SetGlobalThreads(threads);
    Rng rng(55);
    Variable x = Variable::Leaf(Tensor::Ones({n}), false);
    Variable y = Dropout(x, 0.7f, /*training=*/true, &rng);
    std::vector<float> vals(y.value().data(), y.value().data() + n);
    return vals;
  };
  const auto serial = mask_with_threads(1);
  const auto parallel = mask_with_threads(8);
  util::SetGlobalThreads(1);
  EXPECT_EQ(serial, parallel);
  // Sanity: the mask actually drops something and scales survivors.
  size_t zeros = 0;
  for (float v : serial) zeros += (v == 0.0f);
  EXPECT_GT(zeros, n / 10);
  EXPECT_LT(zeros, n / 2);
}

TEST(DropoutTest, IdentityAtEval) {
  Rng rng(33);
  Variable x = LeafFrom({4}, {1, 2, 3, 4});
  Variable y = Dropout(x, 0.5f, /*training=*/false, &rng);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(y.value().at(i), x.value().at(i));
  }
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(34);
  Variable x = Variable::Leaf(Tensor::Ones({1000}), true);
  Variable y = Dropout(x, 0.8f, /*training=*/true, &rng);
  size_t zeros = 0;
  for (size_t i = 0; i < 1000; ++i) {
    const float v = y.value().at(i);
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.25f, 1e-5f);  // 1/keep_prob
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 200.0, 60.0);
}

TEST(ReshapeTest, PreservesLayoutAndGradients) {
  Variable x = LeafFrom({2, 3}, {1, 2, 3, 4, 5, 6});
  Variable y = Reshape(x, {3, 2});
  EXPECT_EQ(y.value().at(2, 1), 6.0f);
  Backward(SumAll(y));
  EXPECT_FLOAT_EQ(x.grad().at(1, 2), 1.0f);
}

TEST(ExpandRowsTest, RepeatsAndSumsBack) {
  Variable x = LeafFrom({2, 2}, {1, 2, 3, 4});
  Variable y = ExpandRows(x, 3);
  EXPECT_EQ(y.value().at(0, 2, 1), 2.0f);
  EXPECT_EQ(y.value().at(1, 0, 0), 3.0f);
  Backward(SumAll(y));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 3.0f);  // repeated 3x
}

}  // namespace
}  // namespace autograd
}  // namespace seqfm
