// Lockdown suite for the serving compiler (src/ir/):
//   - trace round-trip: the recorded program's output tensor is bit-equal to
//     a fresh tape-free forward, for SeqFM and every registry baseline;
//   - pass units on hand-built programs: constant folding, dead-code
//     elimination, elementwise fusion, and arena planning (buffer reuse);
//   - compiled-vs-eager serving parity: bit-for-bit equal scores for every
//     model at 1/2 threads, 1/3 shards, and both SIMD levels;
//   - compiler lifecycle: recompile on checkpoint reload, graceful eager
//     fallback when the catalog is too small to disambiguate probes, and
//     loss-curve invariance (tracing/compiling never perturbs training).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "ir/exec.h"
#include "ir/passes.h"
#include "ir/program.h"
#include "ir/trace.h"
#include "ir/verify.h"
#include "nn/module.h"
#include "serve/checkpoint.h"
#include "serve/predictor.h"
#include "serve/shard.h"
#include "tensor/kernels.h"
#include "util/cpu.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures (mirrors tests/serve_test.cc so parity claims line up)
// ---------------------------------------------------------------------------

const std::vector<std::string>& AllBaselines() {
  static const std::vector<std::string> kNames = {
      "FM",  "HOFM",    "NFM", "AFM", "Wide&Deep", "DeepCross",
      "xDeepFM", "DIN", "SASRec",  "TFM", "RRN"};
  return kNames;
}

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

baselines::BaselineConfig SmallBaselineConfig() {
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.mlp_hidden = 8;
  cfg.keep_prob = 1.0f;
  cfg.num_blocks = 2;
  cfg.seed = 123;
  return cfg;
}

core::SeqFmConfig SmallSeqFmConfig() {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = 321;
  return cfg;
}

std::unique_ptr<core::Model> MakeModelByName(const std::string& name,
                                             const data::FeatureSpace& space,
                                             uint64_t seed = 0) {
  if (name == "SeqFM") {
    core::SeqFmConfig cfg = SmallSeqFmConfig();
    if (seed != 0) cfg.seed = seed;
    return std::make_unique<core::SeqFm>(space, cfg);
  }
  baselines::BaselineConfig cfg = SmallBaselineConfig();
  if (seed != 0) cfg.seed = seed;
  return baselines::CreateBaseline(name, space, cfg).ValueOrDie();
}

std::vector<std::string> AllModels() {
  std::vector<std::string> names = AllBaselines();
  names.insert(names.begin(), "SeqFM");
  return names;
}

/// Deterministic requests covering empty, short, and overflowing histories.
std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(4);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};
  examples[2] = {3, 0, 2.0f, {}};  // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  return examples;
}

/// A serving-style batch: every sample shares \p ex's (user, history) and
/// sample i scores candidate \p candidates[i] — the batch shape ir::Trace
/// requires.
data::Batch ServingBatch(const data::BatchBuilder& builder,
                         const data::SequenceExample& ex,
                         const std::vector<int32_t>& candidates) {
  std::vector<const data::SequenceExample*> ptrs(candidates.size(), &ex);
  return builder.Build(ptrs, &candidates);
}

void ExpectBitEqual(const float* a, const float* b, size_t n,
                    const std::string& context) {
  EXPECT_EQ(std::memcmp(a, b, n * sizeof(float)), 0) << context;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Trace round-trip: recorded program output == tape-free forward, bit-for-bit
// ---------------------------------------------------------------------------

class TraceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceTest, TracedProgramRoundTripsTheForward) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName(GetParam(), space);
  const std::vector<int32_t> candidates = {0, 3, 7, 8};
  const data::Batch batch =
      ServingBatch(builder, TestExamples()[0], candidates);

  const ir::TraceResult traced = ir::Trace(model.get(), batch);
  ASSERT_TRUE(traced.ok()) << GetParam() << ": " << traced.error;
  const ir::Program& prog = traced.program;
  ASSERT_FALSE(prog.instrs.empty());
  ASSERT_NE(prog.output, ir::kNoValue);
  ASSERT_EQ(prog.values.size(), traced.value_nodes.size());
  ASSERT_EQ(prog.count, candidates.size());

  // Well-formed SSA: every id in range, every instruction's output recorded.
  for (const ir::Instr& ins : prog.instrs) {
    EXPECT_LT(ins.out, prog.values.size());
    for (uint32_t u : ins.in) EXPECT_LT(u, prog.values.size());
  }

  // The traced output tensor is the forward's output, bit-for-bit.
  autograd::NoGradGuard guard;
  const autograd::Variable eager = model->Score(batch, /*training=*/false);
  const tensor::Tensor& recorded = traced.value_nodes[prog.output]->value;
  ASSERT_EQ(recorded.size(), eager.value().size());
  ExpectBitEqual(recorded.data(), eager.value().data(), recorded.size(),
                 GetParam() + " trace round-trip");
}

INSTANTIATE_TEST_SUITE_P(AllModels, TraceTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Pass units on hand-built programs
// ---------------------------------------------------------------------------

/// Appends a kLocal value of \p shape and returns its id.
uint32_t AddLocal(ir::Program* p, std::vector<size_t> shape) {
  ir::Value v;
  v.kind = ir::ValueKind::kLocal;
  v.shape = std::move(shape);
  p->values.push_back(std::move(v));
  return static_cast<uint32_t>(p->values.size() - 1);
}

/// Appends a kConstant value holding \p t and returns its id.
uint32_t AddConstant(ir::Program* p, tensor::Tensor t) {
  ir::Value v;
  v.kind = ir::ValueKind::kConstant;
  v.shape.assign(t.shape().begin(), t.shape().end());
  v.index = static_cast<uint32_t>(p->constants.size());
  p->constants.push_back(std::move(t));
  p->values.push_back(std::move(v));
  return static_cast<uint32_t>(p->values.size() - 1);
}

void AddInstr(ir::Program* p, ir::OpKind kind, std::vector<uint32_t> in,
              uint32_t out, float alpha = 0.0f) {
  ir::Instr ins;
  ins.kind = kind;
  ins.in = std::move(in);
  ins.out = out;
  ins.alpha = alpha;
  p->instrs.push_back(std::move(ins));
}

TEST(PassTest, FoldConstantsEvaluatesConstantSubgraphs) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t c1 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t sum = AddLocal(&p, {2, 2});
  const uint32_t half = AddLocal(&p, {2, 2});
  const uint32_t mask = AddLocal(&p, {2, 2});
  const uint32_t out = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kAdd, {c0, c1}, sum);
  AddInstr(&p, ir::OpKind::kScale, {sum}, half, /*alpha=*/0.5f);
  AddInstr(&p, ir::OpKind::kHistoryMask, {}, mask);
  AddInstr(&p, ir::OpKind::kMul, {half, mask}, out);
  p.output = out;

  // Single in-order sweep folds the whole constant chain: once `sum` is
  // re-kinded to a constant, the scale's input is constant too. The mask and
  // the request-dependent product stay.
  EXPECT_EQ(ir::FoldConstants(&p), 2u);
  ASSERT_EQ(p.instrs.size(), 2u);
  ASSERT_EQ(p.values[half].kind, ir::ValueKind::kConstant);
  const tensor::Tensor& folded = p.constants[p.values[half].index];
  ASSERT_EQ(folded.size(), 4u);
  for (size_t i = 0; i < folded.size(); ++i) {
    EXPECT_EQ(folded.data()[i], 1.0f) << i;  // (1 + 1) * 0.5
  }
}

TEST(PassTest, FoldConstantsNeverFoldsProgramOutputsOrSlots) {
  // The executor resolves program outputs and slot outputs through the
  // frame's locals, so folding one to a constant would hand its consumer an
  // empty tensor. A constant-valued slot is reachable in practice: a
  // constant subgraph consumed by a candidate-variant op gets selected as a
  // slot by Factor. Regression for the verifier-surfaced pinning rule.
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t slot = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, slot);
  p.output = ir::kNoValue;
  p.slot_outputs = {slot};
  EXPECT_EQ(ir::FoldConstants(&p), 0u);
  ASSERT_EQ(p.instrs.size(), 1u);
  EXPECT_EQ(p.values[slot].kind, ir::ValueKind::kLocal);

  ir::Program q;
  const uint32_t d0 = AddConstant(&q, tensor::Tensor::Ones({2, 2}));
  const uint32_t out = AddLocal(&q, {2, 2});
  AddInstr(&q, ir::OpKind::kScale, {d0}, out, /*alpha=*/2.0f);
  q.output = out;
  EXPECT_EQ(ir::FoldConstants(&q), 0u);
  ASSERT_EQ(q.instrs.size(), 1u);
  EXPECT_EQ(q.values[out].kind, ir::ValueKind::kLocal);
}

TEST(PassTest, FoldConstantsLeavesRequestDependentOpsAlone) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t mask = AddLocal(&p, {2, 2});
  const uint32_t out = AddLocal(&p, {2, 2});
  // Synthesized masks depend on the request history even with no tensor
  // inputs; they must never fold.
  AddInstr(&p, ir::OpKind::kHistoryMask, {}, mask);
  AddInstr(&p, ir::OpKind::kMul, {c0, mask}, out);
  p.output = out;
  EXPECT_EQ(ir::FoldConstants(&p), 0u);
  EXPECT_EQ(p.instrs.size(), 2u);
}

TEST(PassTest, DeadCodeElimDropsValuesUnreachableFromOutputs) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t dead = AddLocal(&p, {2, 2});
  const uint32_t dead2 = AddLocal(&p, {2, 2});
  const uint32_t live = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, dead);
  AddInstr(&p, ir::OpKind::kSigmoid, {dead}, dead2);  // dead chain
  AddInstr(&p, ir::OpKind::kTanh, {c0}, live);
  p.output = live;

  EXPECT_EQ(ir::DeadCodeElim(&p), 2u);
  ASSERT_EQ(p.instrs.size(), 1u);
  EXPECT_EQ(p.instrs[0].kind, ir::OpKind::kTanh);
  EXPECT_EQ(p.instrs[0].out, live);
}

TEST(PassTest, DeadCodeElimKeepsSlotOutputsAlive) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t slot = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, slot);
  p.output = ir::kNoValue;  // prologue shape: only slot outputs matter
  p.slot_outputs = {slot};
  EXPECT_EQ(ir::DeadCodeElim(&p), 0u);
  EXPECT_EQ(p.instrs.size(), 1u);
}

TEST(PassTest, FuseElementwiseAliasesSingleConsumerChains) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t base = AddLocal(&p, {2, 2});
  const uint32_t relued = AddLocal(&p, {2, 2});
  const uint32_t scaled = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kAdd, {c0, c0}, base);
  AddInstr(&p, ir::OpKind::kRelu, {base}, relued);
  AddInstr(&p, ir::OpKind::kScale, {relued}, scaled, 2.0f);
  p.output = scaled;

  EXPECT_EQ(ir::FuseElementwise(&p), 2u);
  EXPECT_EQ(p.values[relued].alias_of, base);
  EXPECT_EQ(p.values[scaled].alias_of, relued);
  EXPECT_EQ(p.values[base].alias_of, ir::kNoValue);

  // The whole aliased chain shares one planned buffer.
  ir::PlanArena(&p);
  EXPECT_EQ(p.values[relued].offset, p.values[base].offset);
  EXPECT_EQ(p.values[scaled].offset, p.values[base].offset);
  EXPECT_EQ(p.frame_floats, 16u);  // one 64-byte-aligned 2x2 block
}

TEST(PassTest, FuseElementwiseSkipsMultiConsumerInputs) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t base = AddLocal(&p, {2, 2});
  const uint32_t relued = AddLocal(&p, {2, 2});
  const uint32_t both = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kAdd, {c0, c0}, base);
  AddInstr(&p, ir::OpKind::kRelu, {base}, relued);
  AddInstr(&p, ir::OpKind::kMul, {base, relued}, both);  // base read again
  p.output = both;
  // Running relu in place would corrupt base before the mul reads it.
  EXPECT_EQ(ir::FuseElementwise(&p), 0u);
  EXPECT_EQ(p.values[relued].alias_of, ir::kNoValue);
}

TEST(PassTest, PlanArenaReusesBuffersAcrossDisjointLifetimes) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 2}));
  const uint32_t temp = AddLocal(&p, {2, 2});
  const uint32_t kept = AddLocal(&p, {2, 2});
  const uint32_t late = AddLocal(&p, {2, 2});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, temp);     // temp: instrs [0, 1]
  AddInstr(&p, ir::OpKind::kAdd, {temp, c0}, kept);  // kept: live to the end
  AddInstr(&p, ir::OpKind::kSigmoid, {c0}, late);  // late: defined after temp
  AddInstr(&p, ir::OpKind::kMul, {kept, late}, kept);
  p.output = kept;

  ir::PlanArena(&p);
  // temp is dead before late is defined, so late reuses its block; kept
  // overlaps both and needs its own.
  EXPECT_EQ(p.values[late].offset, p.values[temp].offset);
  EXPECT_NE(p.values[kept].offset, p.values[temp].offset);
  EXPECT_EQ(p.frame_floats, 32u);  // two aligned 2x2 blocks, not three
}

// ---------------------------------------------------------------------------
// Verifier: hand-corrupted programs are rejected with precise diagnostics.
// Each test takes a valid program, breaks exactly one invariant, and asserts
// ir::Verify names the broken rule — the lockdown that keeps a future pass
// bug from shipping a structurally-wrong program to the executor.
// ---------------------------------------------------------------------------

/// c0 -> relu -> a; (a, c0) -> add -> b; output b. Verifies clean.
ir::Program SmallValidProgram() {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 4}));
  const uint32_t a = AddLocal(&p, {2, 4});
  const uint32_t b = AddLocal(&p, {2, 4});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, a);
  AddInstr(&p, ir::OpKind::kAdd, {a, c0}, b);
  p.output = b;
  return p;
}

void ExpectVerifyRejects(const ir::Program& p, const std::string& substr,
                         const ir::VerifyOptions& opts = {}) {
  const Status st = ir::Verify(p, opts);
  ASSERT_FALSE(st.ok()) << "verifier accepted a program that should fail: "
                        << substr;
  EXPECT_NE(st.message().find(substr), std::string::npos)
      << "diagnostic \"" << st.message() << "\" lacks \"" << substr << "\"";
}

TEST(VerifierTest, AcceptsAWellFormedProgram) {
  const ir::Program p = SmallValidProgram();
  const Status st = ir::Verify(p);
  EXPECT_TRUE(st.ok()) << st.message();
}

TEST(VerifierTest, RejectsUseBeforeDefinition) {
  ir::Program p = SmallValidProgram();
  // The add now runs first and reads %1 (relu's output) one instruction
  // before it exists.
  std::swap(p.instrs[0], p.instrs[1]);
  ExpectVerifyRejects(p, "before its definition");
}

TEST(VerifierTest, RejectsDoubleDefinition) {
  ir::Program p = SmallValidProgram();
  // Second write to the relu output: SSA violation.
  AddInstr(&p, ir::OpKind::kSigmoid, {0}, 1);
  ExpectVerifyRejects(p, "defined twice");
}

TEST(VerifierTest, RejectsConstantShapeDisagreement) {
  ir::Program p = SmallValidProgram();
  p.values[0].shape = {3, 3};  // tensor holds 8 floats, shape now claims 9
  ExpectVerifyRejects(p, "disagrees with declared shape");
}

TEST(VerifierTest, RejectsSlotValueWhereSlotsAreNotAllowed) {
  ir::Program p = SmallValidProgram();
  ir::Value slot;
  slot.kind = ir::ValueKind::kSlot;
  slot.shape = {2, 4};
  slot.index = 0;
  p.values.push_back(slot);
  const uint32_t sid = static_cast<uint32_t>(p.values.size() - 1);
  p.instrs[1].in[1] = sid;  // add now reads the slot instead of c0
  // Prologue-style verification (no slots) must reject...
  ExpectVerifyRejects(p, "takes no slots");
  // ...an in-range slot under body options is fine...
  ir::VerifyOptions body;
  body.allow_slots = true;
  body.num_slots = 1;
  const Status ok = ir::Verify(p, body);
  EXPECT_TRUE(ok.ok()) << ok.message();
  // ...and an out-of-range slot index is named precisely.
  p.values[sid].index = 7;
  ExpectVerifyRejects(p, "slot index 7 out of range", body);
}

TEST(VerifierTest, RejectsOutOfRangeBindingColumn) {
  ir::Program p;
  p.count = 2;
  p.n_static = 2;  // static index row has columns {0, 1}
  const uint32_t table = AddConstant(&p, tensor::Tensor::Ones({5, 3}));
  const uint32_t rows = AddLocal(&p, {2, 1, 3});
  AddInstr(&p, ir::OpKind::kEmbeddingGather, {table}, rows);
  p.instrs.back().binding.source = ir::IndexSource::kStatic;
  p.instrs.back().binding.cols = {0};
  p.instrs.back().binding.deltas = {0};
  p.output = rows;
  const Status ok = ir::Verify(p);
  ASSERT_TRUE(ok.ok()) << ok.message();

  p.instrs.back().binding.cols = {5};  // reads past the synthesized row
  ExpectVerifyRejects(p, "binding column 5 (position 0) exceeds source width 2");
}

TEST(VerifierTest, RejectsIllegalFusionAlias) {
  ir::Program p = SmallValidProgram();
  // kAdd is not a pointwise in-place op: writing its output over in[0]
  // while also reading in[1] would clobber mid-instruction.
  p.values[p.output].alias_of = 1;
  ExpectVerifyRejects(p, "illegal fusion alias");
}

TEST(VerifierTest, RejectsReadAfterInPlaceOverwrite) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 4}));
  const uint32_t a = AddLocal(&p, {2, 4});
  const uint32_t scaled = AddLocal(&p, {2, 4});
  const uint32_t sum = AddLocal(&p, {2, 4});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, a);
  AddInstr(&p, ir::OpKind::kScale, {a}, scaled, /*alpha=*/2.0f);
  p.values[scaled].alias_of = a;  // legal in-place scale...
  AddInstr(&p, ir::OpKind::kAdd, {a, c0}, sum);  // ...but %a's bits are gone
  p.output = sum;
  ExpectVerifyRejects(p, "overwritten in place");
}

TEST(VerifierTest, RejectsDanglingSlotOutput) {
  ir::Program p = SmallValidProgram();
  p.slot_outputs.push_back(AddLocal(&p, {2, 4}));  // never defined
  ExpectVerifyRejects(p, "dangling slot");
}

TEST(VerifierTest, RejectsOverlappingLiveArenaRanges) {
  ir::Program p;
  const uint32_t c0 = AddConstant(&p, tensor::Tensor::Ones({2, 4}));
  const uint32_t a = AddLocal(&p, {2, 4});
  const uint32_t b = AddLocal(&p, {2, 4});
  const uint32_t sum = AddLocal(&p, {2, 4});
  AddInstr(&p, ir::OpKind::kRelu, {c0}, a);
  AddInstr(&p, ir::OpKind::kSigmoid, {c0}, b);
  AddInstr(&p, ir::OpKind::kAdd, {a, b}, sum);  // a and b live together
  p.output = sum;
  ir::PlanArena(&p);
  ir::VerifyOptions arena;
  arena.check_arena = true;
  const Status ok = ir::Verify(p, arena);
  ASSERT_TRUE(ok.ok()) << ok.message();

  p.values[b].offset = p.values[a].offset;  // sabotage the plan
  ExpectVerifyRejects(p, "overlap", arena);
}

// ---------------------------------------------------------------------------
// Verifier x pipeline: for every model, each pass of the default pipeline
// leaves both factored halves verifier-clean (the same sequence — and the
// same options — Engine::CompileCount checks after every stage).
// ---------------------------------------------------------------------------

class VerifierPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(VerifierPipelineTest, EveryPassLeavesTheProgramVerifierClean) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName(GetParam(), space);
  const data::SequenceExample ex = TestExamples()[0];
  const data::Batch b1 = ServingBatch(builder, ex, {0});
  const data::Batch bC = ServingBatch(builder, ex, {0, 3, 7, 8});

  const ir::TraceResult t1 = ir::Trace(model.get(), b1);
  const ir::TraceResult tC = ir::Trace(model.get(), bC);
  ASSERT_TRUE(t1.ok()) << GetParam() << ": " << t1.error;
  ASSERT_TRUE(tC.ok()) << GetParam() << ": " << tC.error;
  Status st = ir::Verify(t1.program);
  EXPECT_TRUE(st.ok()) << GetParam() << " trace(1): " << st.message();
  st = ir::Verify(tC.program);
  EXPECT_TRUE(st.ok()) << GetParam() << " trace(C): " << st.message();

  ir::FactorResult f = ir::Factor(t1, tC, b1, bC);
  ASSERT_TRUE(f.ok()) << GetParam() << ": " << f.error;

  ir::VerifyOptions prologue_opts;
  ir::VerifyOptions body_opts;
  body_opts.allow_slots = true;
  body_opts.num_slots = f.prologue.slot_outputs.size();
  for (ir::Program* half : {&f.prologue, &f.body}) {
    const bool is_body = half == &f.body;
    ir::VerifyOptions opts = is_body ? body_opts : prologue_opts;
    const std::string who =
        GetParam() + (is_body ? " body " : " prologue ");
    st = ir::Verify(*half, opts);
    EXPECT_TRUE(st.ok()) << who << "after factor: " << st.message();
    ir::FoldConstants(half);
    st = ir::Verify(*half, opts);
    EXPECT_TRUE(st.ok()) << who << "after fold_constants: " << st.message();
    ir::DeadCodeElim(half);
    st = ir::Verify(*half, opts);
    EXPECT_TRUE(st.ok()) << who << "after dead_code_elim: " << st.message();
    ir::FuseElementwise(half);
    st = ir::Verify(*half, opts);
    EXPECT_TRUE(st.ok()) << who << "after fuse_elementwise: " << st.message();
    ir::PlanArena(half);
    opts.check_arena = true;
    st = ir::Verify(*half, opts);
    EXPECT_TRUE(st.ok()) << who << "after plan_arena: " << st.message();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, VerifierPipelineTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Compiled-vs-eager serving parity: every model, threads x shards x SIMD
// ---------------------------------------------------------------------------

class CompiledParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CompiledParityTest, CompiledServingMatchesEagerBitForBit) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName(GetParam(), space);

  serve::PredictorOptions compiled_opts;
  compiled_opts.micro_batch = 4;  // several chunks (and body counts) per scan
  compiled_opts.context_cache_bytes = 1 << 20;
  serve::Predictor compiled(model.get(), &builder, compiled_opts);
  ASSERT_TRUE(compiled.compiled_active())
      << GetParam() << " must compile into an op program";
  ASSERT_NE(compiled.engine(), nullptr);
  // Sequence models gather the history separately from the candidate, so
  // factoring must hoist a non-trivial candidate-invariant prologue. The
  // FM family embeds one unified (user, candidate, history) row through a
  // single candidate-dependent gather — zero slots is correct there.
  const bool sequence_model =
      GetParam() == "SeqFM" || GetParam() == "DIN" || GetParam() == "SASRec" ||
      GetParam() == "TFM" || GetParam() == "RRN";
  if (sequence_model) {
    EXPECT_GT(compiled.engine()->num_slots(), 0u) << GetParam();
  }

  serve::PredictorOptions eager_opts;
  eager_opts.micro_batch = 4;
  eager_opts.use_compiled_program = false;
  serve::Predictor eager(model.get(), &builder, eager_opts);
  EXPECT_FALSE(eager.compiled_active());

  std::vector<int32_t> catalog(space.num_objects());
  std::iota(catalog.begin(), catalog.end(), 0);

  std::vector<util::SimdLevel> levels = {util::SimdLevel::kScalar};
  if (tensor::kernels::Avx2KernelsAvailable()) {
    levels.push_back(util::SimdLevel::kAvx2);
  }
  const util::SimdLevel prev_level = util::ActiveSimdLevel();

  for (util::SimdLevel level : levels) {
    util::SetSimdLevel(level);
    for (size_t threads : {1u, 2u}) {
      util::SetGlobalThreads(threads);
      for (const auto& ex : TestExamples()) {
        const std::string where =
            GetParam() + " simd=" + util::SimdLevelName(level) +
            " threads=" + std::to_string(threads) +
            " user=" + std::to_string(ex.user);
        const std::vector<float> want = eager.ScoreCandidates(ex, catalog);
        const std::vector<float> got = compiled.ScoreCandidates(ex, catalog);
        ASSERT_EQ(want.size(), got.size());
        ExpectBitEqual(want.data(), got.data(), want.size(), where);

        // Sharded serving over the compiled predictor reproduces the eager
        // unsharded ranking exactly (scores compared as bits).
        const std::vector<serve::ScoredItem> ref = eager.TopKAll(ex, 5);
        for (size_t shards : {1u, 3u}) {
          serve::ShardedPredictorOptions sopts;
          sopts.num_shards = shards;
          sopts.micro_batch = 4;
          serve::ShardedPredictor sharded(&compiled, sopts);
          const std::vector<serve::ScoredItem> top = sharded.TopKAll(ex, 5);
          ASSERT_EQ(top.size(), ref.size()) << where;
          for (size_t i = 0; i < top.size(); ++i) {
            EXPECT_EQ(top[i].item, ref[i].item)
                << where << " shards=" << shards << " rank=" << i;
            EXPECT_EQ(std::memcmp(&top[i].score, &ref[i].score,
                                  sizeof(float)),
                      0)
                << where << " shards=" << shards << " rank=" << i;
          }
        }
      }
    }
  }
  EXPECT_TRUE(compiled.compiled_active())
      << GetParam() << " fell back to eager mid-test";
  util::SetGlobalThreads(1);
  util::SetSimdLevel(prev_level);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CompiledParityTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Compiler lifecycle
// ---------------------------------------------------------------------------

TEST(CompiledLifecycleTest, OptionOffDisablesTheEngine) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName("SeqFM", space);
  serve::PredictorOptions opts;
  opts.use_compiled_program = false;
  serve::Predictor predictor(model.get(), &builder, opts);
  EXPECT_EQ(predictor.engine(), nullptr);
  EXPECT_FALSE(predictor.compiled_active());
  EXPECT_TRUE(predictor.fast_path_active());  // hand-factored path remains
}

TEST(CompiledLifecycleTest, SingleObjectCatalogFallsBackToEagerServing) {
  // One catalog object leaves no second probe candidate to disambiguate the
  // candidate column, so the compiler must decline — and serving must still
  // produce taped-parity scores through the generic path.
  const data::FeatureSpace space(2, 1);
  data::BatchBuilder builder(space, kSeqLen);
  auto model = MakeModelByName("FM", space);
  serve::Predictor predictor(model.get(), &builder);
  EXPECT_EQ(predictor.engine(), nullptr);
  EXPECT_FALSE(predictor.compiled_active());

  const data::SequenceExample ex{/*user=*/1, /*target=*/0, /*rating=*/1.0f,
                                 {0, 0}};
  const std::vector<int32_t> catalog = {0};
  const std::vector<float> scores = predictor.ScoreCandidates(ex, catalog);
  ASSERT_EQ(scores.size(), 1u);

  const data::Batch batch = ServingBatch(builder, ex, catalog);
  const autograd::Variable taped = model->Score(batch, /*training=*/false);
  ExpectBitEqual(scores.data(), taped.value().data(), 1, "tiny catalog");
}

TEST(CompiledLifecycleTest, CheckpointReloadRecompilesTheProgram) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto serving = MakeModelByName("SeqFM", space);
  auto trained = MakeModelByName("SeqFM", space, /*seed=*/777);

  const std::string path = TempPath("ir_reload_test.bin");
  ASSERT_TRUE(serve::Checkpoint::Save(
                  *dynamic_cast<nn::Module*>(trained.get()), path)
                  .ok());

  serve::PredictorOptions opts;
  opts.micro_batch = 4;
  serve::Predictor predictor(serving.get(), &builder, opts);
  ASSERT_TRUE(predictor.compiled_active());
  const uint64_t uid_before = predictor.engine()->uid();

  ASSERT_TRUE(predictor.ReloadCheckpoint(path).ok());
  ASSERT_TRUE(predictor.compiled_active());
  // A fresh engine: the candidate-invariant split is verified against live
  // parameter values, so stale programs must never survive a reload.
  EXPECT_NE(predictor.engine()->uid(), uid_before);

  // And the recompiled program scores the *new* parameters bit-exactly.
  std::vector<int32_t> catalog(space.num_objects());
  std::iota(catalog.begin(), catalog.end(), 0);
  const data::SequenceExample ex = TestExamples()[0];
  const std::vector<float> got = predictor.ScoreCandidates(ex, catalog);
  const data::Batch batch = ServingBatch(builder, ex, catalog);
  autograd::NoGradGuard guard;
  const autograd::Variable want = trained->Score(batch, /*training=*/false);
  ASSERT_EQ(got.size(), want.value().size());
  ExpectBitEqual(got.data(), want.value().data(), got.size(),
                 "post-reload parity");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Slot-ABI re-verification at reload: a body whose slot wiring no longer
// matches the prologue would read the wrong context floats and serve garbage
// rankings WITHOUT crashing — the reload path must catch it and fall back.
// ---------------------------------------------------------------------------

namespace {

// Saves a checkpoint, reloads it with the slot wiring corrupted via the
// test hook, and asserts the predictor detected the miswiring, latched the
// compiled path off, and still serves the new parameters bit-exactly
// through the eager fallback.
void RunCorruptedReload(bool corrupt_shape) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto serving = MakeModelByName("SeqFM", space);
  auto trained = MakeModelByName("SeqFM", space, /*seed=*/4242);

  const std::string path = TempPath(corrupt_shape
                                        ? "ir_abi_shape_test.bin"
                                        : "ir_abi_index_test.bin");
  ASSERT_TRUE(serve::Checkpoint::Save(
                  *dynamic_cast<nn::Module*>(trained.get()), path)
                  .ok());

  serve::PredictorOptions opts;
  opts.micro_batch = 4;
  serve::Predictor predictor(serving.get(), &builder, opts);
  ASSERT_TRUE(predictor.compiled_active());
  // The healthy engine's ABI verifies — the check itself is not trigger-
  // happy, or every clean reload would forfeit the compiled path.
  ASSERT_TRUE(predictor.engine()->ReverifySlotAbi().ok());

  predictor.SetReloadCorruptionHookForTest([corrupt_shape](ir::Engine* e) {
    e->CorruptSlotWiringForTest(corrupt_shape);
  });
  // The reload itself succeeds: the parameters ARE the new checkpoint.
  ASSERT_TRUE(predictor.ReloadCheckpoint(path).ok());
  // But the miswired program was caught and latched off.
  EXPECT_FALSE(predictor.compiled_active());

  // The fallback path serves the NEW parameters bit-exactly — degraded to
  // eager, never degraded to wrong.
  std::vector<int32_t> catalog(space.num_objects());
  std::iota(catalog.begin(), catalog.end(), 0);
  const data::SequenceExample ex = TestExamples()[0];
  const std::vector<float> got = predictor.ScoreCandidates(ex, catalog);
  const data::Batch batch = ServingBatch(builder, ex, catalog);
  autograd::NoGradGuard guard;
  const autograd::Variable want = trained->Score(batch, /*training=*/false);
  ASSERT_EQ(got.size(), want.value().size());
  ExpectBitEqual(got.data(), want.value().data(), got.size(),
                 "corrupted-reload eager parity");
  std::remove(path.c_str());
}

}  // namespace

TEST(SlotAbiReverifyTest, ReloadCatchesOutOfRangeSlotIndex) {
  RunCorruptedReload(/*corrupt_shape=*/false);
}

TEST(SlotAbiReverifyTest, ReloadCatchesSlotShapeMismatch) {
  RunCorruptedReload(/*corrupt_shape=*/true);
}

TEST(SlotAbiReverifyTest, CleanReloadKeepsCompiledPathAndVerifiesAbi) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  auto serving = MakeModelByName("SeqFM", space);

  const std::string path = TempPath("ir_abi_clean_test.bin");
  ASSERT_TRUE(serve::Checkpoint::Save(
                  *dynamic_cast<nn::Module*>(serving.get()), path)
                  .ok());

  serve::Predictor predictor(serving.get(), &builder);
  ASSERT_TRUE(predictor.compiled_active());

  // Hook installed but benign: prove the re-verification actually runs on
  // every reload (the hook observes the fresh engine) and passes clean.
  bool reverified = false;
  predictor.SetReloadCorruptionHookForTest([&reverified](ir::Engine* e) {
    reverified = e->ReverifySlotAbi().ok();
  });
  ASSERT_TRUE(predictor.ReloadCheckpoint(path).ok());
  EXPECT_TRUE(reverified);
  EXPECT_TRUE(predictor.compiled_active());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Loss-curve invariance: tracing/compiling a model never perturbs training
// ---------------------------------------------------------------------------

TEST(TraceInvarianceTest, TracingBetweenEpochsLeavesLossCurveUntouched) {
  const auto log = data::SyntheticDatasetGenerator(
                       data::SyntheticDatasetGenerator::Preset("gowalla", 0.1)
                           .ValueOrDie())
                       .Generate()
                       .ValueOrDie();
  const auto dataset = data::TemporalDataset::FromLog(log).ValueOrDie();
  const data::FeatureSpace space(log.num_users(), log.num_objects());
  data::BatchBuilder builder(space, kSeqLen);

  core::TrainConfig tcfg;
  tcfg.task = core::Task::kRanking;
  tcfg.epochs = 2;
  tcfg.batch_size = 64;
  tcfg.num_negatives = 1;

  core::SeqFmConfig mcfg = SmallSeqFmConfig();

  // Reference: two plain epochs.
  core::SeqFm plain(space, mcfg);
  core::Trainer plain_trainer(&plain, &builder, &dataset, tcfg);
  const core::EpochStats plain_e1 = plain_trainer.TrainEpoch();
  const core::EpochStats plain_e2 = plain_trainer.TrainEpoch();

  // Same seed, but the model is traced AND fully compiled before training
  // and again between the epochs — eval forwards that must not disturb
  // parameters, optimizer state, or the trainer's sampling stream.
  core::SeqFm probed(space, mcfg);
  const data::SequenceExample probe{0, 1, 1.0f, {1, 2}};
  const data::Batch probe_batch = ServingBatch(builder, probe, {0, 1});
  ASSERT_TRUE(ir::Trace(&probed, probe_batch).ok());
  core::Trainer probed_trainer(&probed, &builder, &dataset, tcfg);
  const core::EpochStats probed_e1 = probed_trainer.TrainEpoch();
  {
    serve::Predictor predictor(&probed, &builder);  // compiles + self-checks
    ASSERT_TRUE(predictor.compiled_active());
    std::vector<int32_t> catalog(space.num_objects());
    std::iota(catalog.begin(), catalog.end(), 0);
    predictor.ScoreCandidates(probe, catalog);
  }
  const core::EpochStats probed_e2 = probed_trainer.TrainEpoch();

  EXPECT_EQ(plain_e1.mean_loss, probed_e1.mean_loss);
  EXPECT_EQ(plain_e2.mean_loss, probed_e2.mean_loss);
  EXPECT_EQ(plain_e1.steps, probed_e1.steps);
  EXPECT_EQ(plain_e2.steps, probed_e2.steps);
}

}  // namespace
}  // namespace seqfm
