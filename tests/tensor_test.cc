#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FactoryHelpers) {
  Tensor ones = Tensor::Ones({4});
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(ones.at(i), 1.0f);
  Tensor full = Tensor::Full({2, 2}, 3.5f);
  EXPECT_EQ(full.at(1, 1), 3.5f);
}

TEST(TensorTest, FromVectorChecksSize) {
  auto ok = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->at(1, 0), 3.0f);
  auto bad = Tensor::FromVector({2, 2}, {1, 2, 3});
  EXPECT_FALSE(bad.ok());
  auto bad_rank = Tensor::FromVector({}, {});
  EXPECT_FALSE(bad_rank.ok());
}

TEST(TensorTest, Rank3IndexingIsRowMajor) {
  auto t = Tensor::FromVector({2, 2, 3},
                              {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
               .ValueOrDie();
  EXPECT_EQ(t.at(0, 1, 2), 5.0f);
  EXPECT_EQ(t.at(1, 0, 0), 6.0f);
  EXPECT_EQ(t.BatchData(1)[0], 6.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  auto t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}).ValueOrDie();
  ASSERT_TRUE(t.ReshapeInPlace({3, 2}).ok());
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_FALSE(t.ReshapeInPlace({4, 2}).ok());
}

TEST(TensorTest, AddScaledAndScale) {
  auto a = Tensor::FromVector({3}, {1, 2, 3}).ValueOrDie();
  auto b = Tensor::FromVector({3}, {10, 20, 30}).ValueOrDie();
  a.AddScaled(b, 0.5f);
  EXPECT_EQ(a.at(0), 6.0f);
  EXPECT_EQ(a.at(2), 18.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a.at(1), 24.0f);
}

TEST(TensorTest, ItemRequiresScalar) {
  auto t = Tensor::FromVector({1}, {7}).ValueOrDie();
  EXPECT_EQ(t.Item(), 7.0f);
}

TEST(TensorTest, ToStringShowsShape) {
  Tensor t({2, 3, 4});
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("2x3x4"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ---------------------------------------------------------------------------
// GEMM against a naive reference
// ---------------------------------------------------------------------------

Tensor NaiveMatMul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const size_t m = ta ? a.dim(1) : a.dim(0);
  const size_t k = ta ? a.dim(0) : a.dim(1);
  const size_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += av * bv;
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

class GemmVariantTest : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(GemmVariantTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(21);
  const size_t m = 5, k = 7, n = 4;
  Tensor a(ta ? std::vector<size_t>{k, m} : std::vector<size_t>{m, k});
  Tensor b(tb ? std::vector<size_t>{n, k} : std::vector<size_t>{k, n});
  FillNormal(&a, &rng, 1.0f);
  FillNormal(&b, &rng, 1.0f);
  Tensor got({m, n});
  MatMul(a, b, &got, ta, tb);
  Tensor want = NaiveMatMul(a, b, ta, tb);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4f);
  }
}

TEST_P(GemmVariantTest, AccumulateAddsToOutput) {
  const auto [ta, tb] = GetParam();
  Rng rng(22);
  const size_t m = 3, k = 4, n = 2;
  Tensor a(ta ? std::vector<size_t>{k, m} : std::vector<size_t>{m, k});
  Tensor b(tb ? std::vector<size_t>{n, k} : std::vector<size_t>{k, n});
  FillNormal(&a, &rng, 1.0f);
  FillNormal(&b, &rng, 1.0f);
  Tensor out = Tensor::Full({m, n}, 10.0f);
  MatMul(a, b, &out, ta, tb, /*accumulate=*/true);
  Tensor want = NaiveMatMul(a, b, ta, tb);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], want.data()[i] + 10.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, GemmVariantTest,
    ::testing::Values(std::pair{false, false}, std::pair{false, true},
                      std::pair{true, false}, std::pair{true, true}));

// ---------------------------------------------------------------------------
// Blocked/parallel GEMM vs the naive reference: bit-for-bit, odd shapes,
// every transpose combo, several thread counts.
// ---------------------------------------------------------------------------

struct GemmShape {
  size_t m, k, n;
};

class GemmBitExactTest
    : public ::testing::TestWithParam<std::tuple<GemmShape, size_t>> {
 protected:
  void TearDown() override { util::SetGlobalThreads(1); }
};

TEST_P(GemmBitExactTest, MatchesReferenceBitForBit) {
  const auto [shape, threads] = GetParam();
  util::SetGlobalThreads(threads);
  const auto [m, k, n] = shape;
  Rng rng(91);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      for (const bool accumulate : {false, true}) {
        std::vector<float> a(m * k), b(k * n);
        for (auto& v : a) v = static_cast<float>(rng.Normal());
        for (auto& v : b) v = static_cast<float>(rng.Normal());
        std::vector<float> got(m * n), want(m * n);
        for (size_t i = 0; i < m * n; ++i) {
          got[i] = want[i] = static_cast<float>(i % 17) - 8.0f;
        }
        Gemm(a.data(), b.data(), got.data(), m, k, n, ta, tb, accumulate);
        GemmReference(a.data(), b.data(), want.data(), m, k, n, ta, tb,
                      accumulate);
        for (size_t i = 0; i < m * n; ++i) {
          ASSERT_EQ(got[i], want[i])
              << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
              << " tb=" << tb << " acc=" << accumulate
              << " threads=" << threads << " elem=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapesAcrossThreads, GemmBitExactTest,
    ::testing::Combine(::testing::Values(GemmShape{1, 1, 1},     // scalar
                                         GemmShape{1, 7, 5},     // single row
                                         GemmShape{257, 3, 2},   // tall-skinny
                                         GemmShape{5, 1, 33},    // k = 1
                                         GemmShape{6, 64, 6},    // deep-narrow
                                         GemmShape{33, 17, 129}  // off-tile
                                         ),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{8})));

// A shape large enough (>= kGemmParallelMinWork) to actually cross the
// parallel dispatch threshold at every tested thread count.
TEST(GemmBitExactLargeTest, ParallelPathMatchesSerialBitForBit) {
  const size_t m = 96, k = 48, n = 64;
  Rng rng(92);
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.Normal());
  for (auto& v : b) v = static_cast<float>(rng.Normal());
  std::vector<float> serial(m * n);
  util::SetGlobalThreads(1);
  Gemm(a.data(), b.data(), serial.data(), m, k, n, false, false, false);
  for (const size_t threads : {2u, 4u, 8u}) {
    util::SetGlobalThreads(threads);
    std::vector<float> parallel(m * n);
    Gemm(a.data(), b.data(), parallel.data(), m, k, n, false, false, false);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
  util::SetGlobalThreads(1);
}

// ---------------------------------------------------------------------------
// Degenerate sizes and contract violations
// ---------------------------------------------------------------------------

TEST(GemmDegenerateTest, EmptyOutputIsNoOp) {
  float b_data[4] = {1, 2, 3, 4};
  // m == 0 and n == 0 must not touch C (even a null C is legal then).
  Gemm(b_data, b_data, nullptr, 0, 2, 2, false, false, false);
  float c = 42.0f;
  Gemm(b_data, b_data, &c, 0, 2, 2, false, false, false);
  EXPECT_EQ(c, 42.0f);
  Gemm(b_data, b_data, &c, 1, 2, 0, false, false, false);
  EXPECT_EQ(c, 42.0f);
}

TEST(GemmDegenerateTest, KZeroIsEmptySum) {
  float c[4] = {1, 2, 3, 4};
  // Overwrite semantics: C <- 0 (A and B may be null since k == 0).
  Gemm(nullptr, nullptr, c, 2, 0, 2, false, false, false);
  for (float v : c) EXPECT_EQ(v, 0.0f);
  float c2[4] = {1, 2, 3, 4};
  // Accumulate semantics: C unchanged.
  Gemm(nullptr, nullptr, c2, 2, 0, 2, false, false, true);
  EXPECT_EQ(c2[0], 1.0f);
  EXPECT_EQ(c2[3], 4.0f);
}

TEST(GemmDegenerateTest, ReferenceAgreesOnDegenerateCases) {
  float c[4] = {1, 2, 3, 4};
  GemmReference(nullptr, nullptr, c, 2, 0, 2, false, false, false);
  for (float v : c) EXPECT_EQ(v, 0.0f);
  float sentinel = 7.0f;
  GemmReference(nullptr, nullptr, &sentinel, 0, 3, 3, false, false, false);
  EXPECT_EQ(sentinel, 7.0f);
}

TEST(GemmDeathTest, NullPointersWithRealWorkAbort) {
  float x[4] = {1, 2, 3, 4};
  EXPECT_DEATH(Gemm(nullptr, x, x, 2, 2, 2, false, false, false), "null A");
  EXPECT_DEATH(Gemm(x, nullptr, x, 2, 2, 2, false, false, false), "null B");
  EXPECT_DEATH(Gemm(x, x, nullptr, 2, 2, 2, false, false, false), "null C");
}

TEST(GemmDeathTest, MatMulShapeMismatchAborts) {
  Tensor a({2, 3}), b({4, 2}), out({2, 2});
  EXPECT_DEATH(MatMul(a, b, &out), "Check failed");
  Tensor bad_out({3, 2});
  Tensor b_ok({3, 2});
  EXPECT_DEATH(MatMul(a, b_ok, &bad_out), "Check failed");
}

TEST(BatchedMatMulTest, PerBatchProducts) {
  Rng rng(23);
  Tensor a({3, 2, 4}), b({3, 4, 5});
  FillNormal(&a, &rng, 1.0f);
  FillNormal(&b, &rng, 1.0f);
  Tensor out({3, 2, 5});
  BatchedMatMul(a, b, &out);
  for (size_t bt = 0; bt < 3; ++bt) {
    for (size_t i = 0; i < 2; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        float acc = 0.0f;
        for (size_t p = 0; p < 4; ++p) acc += a.at(bt, i, p) * b.at(bt, p, j);
        EXPECT_NEAR(out.at(bt, i, j), acc, 1e-4f);
      }
    }
  }
}

TEST(BatchedMatMulSharedTest, EquivalentToFlattened) {
  Rng rng(24);
  Tensor a({2, 3, 4}), w({4, 5});
  FillNormal(&a, &rng, 1.0f);
  FillNormal(&w, &rng, 1.0f);
  Tensor out({2, 3, 5});
  BatchedMatMulShared(a, w, &out);
  for (size_t bt = 0; bt < 2; ++bt) {
    for (size_t i = 0; i < 3; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        float acc = 0.0f;
        for (size_t p = 0; p < 4; ++p) acc += a.at(bt, i, p) * w.at(p, j);
        EXPECT_NEAR(out.at(bt, i, j), acc, 1e-4f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(25);
  Tensor x({4, 6});
  FillNormal(&x, &rng, 2.0f);
  Tensor y({4, 6});
  SoftmaxLastDim(x, nullptr, &y);
  for (size_t i = 0; i < 4; ++i) {
    float total = 0.0f;
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      total += y.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, LargeValuesAreStable) {
  auto x = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 999.0f}).ValueOrDie();
  Tensor y({1, 3});
  SoftmaxLastDim(x, nullptr, &y);
  for (size_t j = 0; j < 3; ++j) EXPECT_TRUE(std::isfinite(y.at(0, j)));
  EXPECT_GT(y.at(0, 1), y.at(0, 0));
}

TEST(SoftmaxTest, MaskedEntriesGetZeroProbability) {
  Rng rng(26);
  Tensor x({2, 4});
  FillNormal(&x, &rng, 1.0f);
  const float inf = std::numeric_limits<float>::infinity();
  auto mask =
      Tensor::FromVector({2, 4}, {0, -inf, 0, -inf, -inf, 0, 0, 0}).ValueOrDie();
  Tensor y({2, 4});
  SoftmaxLastDim(x, &mask, &y);
  EXPECT_EQ(y.at(0, 1), 0.0f);
  EXPECT_EQ(y.at(0, 3), 0.0f);
  EXPECT_EQ(y.at(1, 0), 0.0f);
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 2), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, MaskBroadcastsOverBatch) {
  Rng rng(27);
  Tensor x({3, 2, 2});
  FillNormal(&x, &rng, 1.0f);
  const float inf = std::numeric_limits<float>::infinity();
  auto mask = Tensor::FromVector({2, 2}, {0, -inf, 0, 0}).ValueOrDie();
  Tensor y({3, 2, 2});
  SoftmaxLastDim(x, &mask, &y);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_NEAR(y.at(b, 0, 0), 1.0f, 1e-5f);  // row 0: only col 0 open
    EXPECT_EQ(y.at(b, 0, 1), 0.0f);
  }
}

TEST(SoftmaxTest, FullyMaskedRowBecomesZeros) {
  Tensor x({1, 2});
  const float inf = std::numeric_limits<float>::infinity();
  auto mask = Tensor::FromVector({1, 2}, {-inf, -inf}).ValueOrDie();
  Tensor y({1, 2});
  SoftmaxLastDim(x, &mask, &y);
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 0.0f);
}

// ---------------------------------------------------------------------------
// Elementwise & reductions
// ---------------------------------------------------------------------------

TEST(ElementwiseTest, AddSubMul) {
  auto a = Tensor::FromVector({3}, {1, 2, 3}).ValueOrDie();
  auto b = Tensor::FromVector({3}, {4, 5, 6}).ValueOrDie();
  Tensor out({3});
  Add(a, b, &out);
  EXPECT_EQ(out.at(2), 9.0f);
  Sub(a, b, &out);
  EXPECT_EQ(out.at(0), -3.0f);
  Mul(a, b, &out);
  EXPECT_EQ(out.at(1), 10.0f);
}

TEST(ElementwiseTest, Activations) {
  auto x = Tensor::FromVector({4}, {-2, -0.5f, 0, 3}).ValueOrDie();
  Tensor y({4});
  Relu(x, &y);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(3), 3.0f);
  Sigmoid(x, &y);
  EXPECT_NEAR(y.at(2), 0.5f, 1e-6f);
  EXPECT_NEAR(y.at(3), 1.0f / (1.0f + std::exp(-3.0f)), 1e-6f);
  Tanh(x, &y);
  EXPECT_NEAR(y.at(0), std::tanh(-2.0f), 1e-6f);
}

TEST(ElementwiseTest, StableSigmoidExtremes) {
  EXPECT_NEAR(StableSigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(StableSigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(LogSigmoid(-100.0f)));
  EXPECT_NEAR(LogSigmoid(100.0f), 0.0f, 1e-5f);
}

TEST(ReductionTest, AddBiasBroadcasts) {
  auto x = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1}).ValueOrDie();
  auto b = Tensor::FromVector({3}, {10, 20, 30}).ValueOrDie();
  Tensor y({2, 3});
  AddBiasLastDim(x, b, &y);
  EXPECT_EQ(y.at(0, 2), 30.0f);
  EXPECT_EQ(y.at(1, 0), 11.0f);
}

TEST(ReductionTest, SumAxis1WithScale) {
  auto x = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8}).ValueOrDie();
  Tensor out({2, 2});
  SumAxis1(x, 0.5f, &out);
  EXPECT_EQ(out.at(0, 0), 2.0f);  // (1+3)/2
  EXPECT_EQ(out.at(1, 1), 7.0f);  // (6+8)/2
}

TEST(ReductionTest, SumLastAndSumAll) {
  auto x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}).ValueOrDie();
  Tensor out({2});
  SumLastDim(x, &out);
  EXPECT_EQ(out.at(0), 6.0f);
  EXPECT_EQ(out.at(1), 15.0f);
  EXPECT_EQ(SumAll(x), 21.0f);
}

// ---------------------------------------------------------------------------
// Initializers
// ---------------------------------------------------------------------------

TEST(InitTest, XavierBoundsRespectFanInOut) {
  Rng rng(30);
  Tensor w({100, 50});
  FillXavier(&w, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  float max_abs = 0.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(w.data()[i]));
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, bound * 0.5f);  // not degenerate
}

TEST(InitTest, NormalStddev) {
  Rng rng(31);
  Tensor w({200, 50});
  FillNormal(&w, &rng, 0.1f);
  double sum_sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  EXPECT_NEAR(std::sqrt(sum_sq / w.size()), 0.1, 0.01);
}

}  // namespace
}  // namespace tensor
}  // namespace seqfm
