#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/dataset.h"
#include "data/feature_space.h"
#include "data/interaction.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace seqfm {
namespace data {
namespace {

// ---------------------------------------------------------------------------
// FeatureSpace
// ---------------------------------------------------------------------------

TEST(FeatureSpaceTest, IndexLayout) {
  FeatureSpace space(10, 20, 3);
  EXPECT_EQ(space.static_dim(), 33u);
  EXPECT_EQ(space.dynamic_dim(), 20u);
  EXPECT_EQ(space.total_dim(), 53u);
  EXPECT_EQ(space.UserIndex(4), 4);
  EXPECT_EQ(space.CandidateIndex(0), 10);
  EXPECT_EQ(space.CandidateIndex(19), 29);
  EXPECT_EQ(space.SideIndex(2), 32);
  EXPECT_EQ(space.DynamicIndex(7), 7);
}

// ---------------------------------------------------------------------------
// InteractionLog
// ---------------------------------------------------------------------------

InteractionLog MakeLog() {
  InteractionLog log(3, 5);
  // User 0: objects in scrambled timestamp order.
  log.Add({0, 2, 30, 4.0f});
  log.Add({0, 1, 10, 3.0f});
  log.Add({0, 3, 20, 5.0f});
  // User 1: two events.
  log.Add({1, 0, 1, 2.0f});
  log.Add({1, 4, 2, 1.0f});
  // User 2: four events.
  for (int t = 0; t < 4; ++t) {
    log.Add({2, t, t, 3.5f});
  }
  log.Finalize();
  return log;
}

TEST(InteractionLogTest, FinalizeSortsChronologically) {
  InteractionLog log = MakeLog();
  const auto& seq = log.UserSequence(0);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].object, 1);
  EXPECT_EQ(seq[1].object, 3);
  EXPECT_EQ(seq[2].object, 2);
  EXPECT_EQ(log.num_interactions(), 9u);
}

TEST(InteractionLogTest, StableSortOnTiedTimestamps) {
  InteractionLog log(1, 3);
  log.Add({0, 0, 5, 0.0f});
  log.Add({0, 1, 5, 0.0f});
  log.Add({0, 2, 5, 0.0f});
  log.Finalize();
  const auto& seq = log.UserSequence(0);
  EXPECT_EQ(seq[0].object, 0);
  EXPECT_EQ(seq[1].object, 1);
  EXPECT_EQ(seq[2].object, 2);
}

TEST(InteractionLogTest, StatsMatchTableIColumns) {
  InteractionLog log = MakeLog();
  LogStats stats = log.ComputeStats();
  EXPECT_EQ(stats.num_users, 3u);
  EXPECT_EQ(stats.num_objects, 5u);
  EXPECT_EQ(stats.num_instances, 9u);
  EXPECT_EQ(stats.num_sparse_features, 3u + 2u * 5u);
  EXPECT_NEAR(stats.avg_sequence_length, 3.0, 1e-9);
}

TEST(InteractionLogTest, FilterRemovesSparseUsersAndObjects) {
  InteractionLog log(4, 4);
  // Objects 0,1 are popular (3 users each); object 2 seen by 1 user;
  // user 3 has a single event.
  for (int u = 0; u < 3; ++u) {
    log.Add({u, 0, 0, 0.0f});
    log.Add({u, 1, 1, 0.0f});
  }
  log.Add({0, 2, 2, 0.0f});
  log.Add({3, 3, 0, 0.0f});
  log.Finalize();
  auto filtered = log.Filter(/*min_user_events=*/2, /*min_object_users=*/2);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_users(), 3u);
  EXPECT_EQ(filtered->num_objects(), 2u);
  EXPECT_EQ(filtered->num_interactions(), 6u);
}

TEST(InteractionLogTest, FilterIteratesToFixedPoint) {
  InteractionLog log(3, 3);
  // User 2 only interacts with object 2; object 2 only seen by user 2.
  // Dropping either must cascade.
  log.Add({0, 0, 0, 0.0f});
  log.Add({0, 1, 1, 0.0f});
  log.Add({1, 0, 0, 0.0f});
  log.Add({1, 1, 1, 0.0f});
  log.Add({2, 2, 0, 0.0f});
  log.Add({2, 2, 1, 0.0f});
  log.Finalize();
  auto filtered = log.Filter(2, 2);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_users(), 2u);
  EXPECT_EQ(filtered->num_objects(), 2u);
}

TEST(InteractionLogTest, FilterRejectsTotalWipeout) {
  InteractionLog log(1, 1);
  log.Add({0, 0, 0, 0.0f});
  log.Finalize();
  EXPECT_FALSE(log.Filter(100, 100).ok());
}

TEST(CsvLoaderTest, RoundTripWithHeaderAndRatings) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "seqfm_csv_test.csv").string();
  {
    std::ofstream out(path);
    out << "user,object,timestamp,rating\n";
    out << "100,7,2,4.5\n100,9,1,3.0\n200,7,5,2.0\n";
  }
  auto log = LoadInteractionCsv(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->num_users(), 2u);
  EXPECT_EQ(log->num_objects(), 2u);
  EXPECT_EQ(log->num_interactions(), 3u);
  // User "100" -> id 0; its sequence is sorted by timestamp: obj 9 first.
  const auto& seq = log->UserSequence(0);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_FLOAT_EQ(seq[0].rating, 3.0f);
  EXPECT_FLOAT_EQ(seq[1].rating, 4.5f);
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, RejectsMalformedInput) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "seqfm_bad_csv.csv").string();
  {
    std::ofstream out(path);
    out << "1,2\n";  // too few columns
  }
  EXPECT_FALSE(LoadInteractionCsv(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadInteractionCsv("/nonexistent.csv").ok());
}

// ---------------------------------------------------------------------------
// TemporalDataset: the leave-one-out protocol
// ---------------------------------------------------------------------------

TEST(TemporalDatasetTest, LeaveOneOutSplit) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log);
  ASSERT_TRUE(ds.ok());
  // Users 0 and 2 have >= 3 events -> 1 test + 1 validation each.
  EXPECT_EQ(ds->test().size(), 2u);
  EXPECT_EQ(ds->validation().size(), 2u);
  // Train: user0 1, user1 2 (too short for holdout), user2 2.
  EXPECT_EQ(ds->train().size(), 5u);
}

TEST(TemporalDatasetTest, TestTargetIsChronologicallyLast) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  for (const auto& ex : ds.test()) {
    const auto& seq = log.UserSequence(ex.user);
    EXPECT_EQ(ex.target, seq.back().object);
    ASSERT_EQ(ex.history.size(), seq.size() - 1);
    for (size_t i = 0; i < ex.history.size(); ++i) {
      EXPECT_EQ(ex.history[i], seq[i].object);
    }
  }
}

TEST(TemporalDatasetTest, TrainHistoriesAreStrictPrefixes) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  for (const auto& ex : ds.train()) {
    const auto& seq = log.UserSequence(ex.user);
    const size_t t = ex.history.size();
    ASSERT_LT(t, seq.size());
    EXPECT_EQ(ex.target, seq[t].object) << "target must follow its history";
  }
}

TEST(TemporalDatasetTest, InteractedCoversWholeLog) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  EXPECT_TRUE(ds.Interacted(0, 1));
  EXPECT_TRUE(ds.Interacted(0, 2));
  EXPECT_FALSE(ds.Interacted(0, 0));
  EXPECT_FALSE(ds.Interacted(1, 3));
}

TEST(TemporalDatasetTest, WithTrainFractionKeepsEvalSplits) {
  auto cfg = SyntheticDatasetGenerator::Preset("toys", 0.3).ValueOrDie();
  auto log = SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  Rng rng(80);
  auto half = ds.WithTrainFraction(0.5, &rng);
  EXPECT_EQ(half.test().size(), ds.test().size());
  EXPECT_EQ(half.validation().size(), ds.validation().size());
  EXPECT_LT(half.train().size(), ds.train().size());
  EXPECT_NEAR(static_cast<double>(half.train().size()),
              0.5 * static_cast<double>(ds.train().size()),
              0.12 * static_cast<double>(ds.train().size()));
}

// ---------------------------------------------------------------------------
// NegativeSampler
// ---------------------------------------------------------------------------

TEST(NegativeSamplerTest, NeverReturnsInteractedObjects) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  NegativeSampler sampler(&ds);
  Rng rng(81);
  for (int i = 0; i < 500; ++i) {
    const int32_t neg = sampler.Sample(0, &rng);
    EXPECT_FALSE(ds.Interacted(0, neg));
  }
}

TEST(NegativeSamplerTest, SampleManyCount) {
  InteractionLog log = MakeLog();
  auto ds = TemporalDataset::FromLog(log).ValueOrDie();
  NegativeSampler sampler(&ds);
  Rng rng(82);
  auto negs = sampler.SampleMany(2, 7, &rng);
  EXPECT_EQ(negs.size(), 7u);
}

// ---------------------------------------------------------------------------
// BatchBuilder
// ---------------------------------------------------------------------------

TEST(BatchBuilderTest, TopPaddingPutsRecentItemsLast) {
  FeatureSpace space(3, 5);
  BatchBuilder builder(space, /*max_seq_len=*/4);
  SequenceExample ex;
  ex.user = 1;
  ex.target = 2;
  ex.history = {0, 3};  // shorter than max_seq_len
  Batch batch = builder.Build({&ex});
  ASSERT_EQ(batch.n_seq, 4u);
  EXPECT_EQ(batch.dynamic_ids[0], -1);
  EXPECT_EQ(batch.dynamic_ids[1], -1);
  EXPECT_EQ(batch.dynamic_ids[2], 0);
  EXPECT_EQ(batch.dynamic_ids[3], 3);
  EXPECT_EQ(batch.static_ids[0], 1);       // user index
  EXPECT_EQ(batch.static_ids[1], 3 + 2);   // candidate offset by num_users
}

TEST(BatchBuilderTest, LongHistoryKeepsMostRecent) {
  FeatureSpace space(3, 9);
  BatchBuilder builder(space, 3);
  SequenceExample ex;
  ex.user = 0;
  ex.target = 1;
  ex.history = {0, 1, 2, 3, 4, 5, 6};
  Batch batch = builder.Build({&ex});
  EXPECT_EQ(batch.dynamic_ids[0], 4);
  EXPECT_EQ(batch.dynamic_ids[1], 5);
  EXPECT_EQ(batch.dynamic_ids[2], 6);
}

TEST(BatchBuilderTest, TargetOverrideReplacesCandidate) {
  FeatureSpace space(3, 5);
  BatchBuilder builder(space, 2);
  SequenceExample ex;
  ex.user = 2;
  ex.target = 0;
  std::vector<int32_t> override_targets = {4};
  Batch batch = builder.Build({&ex}, &override_targets);
  EXPECT_EQ(batch.static_ids[1], 3 + 4);
}

TEST(BatchBuilderTest, UnifiedIdsOffsetDynamicFeatures) {
  FeatureSpace space(3, 5);
  BatchBuilder builder(space, 2);
  SequenceExample ex;
  ex.user = 1;
  ex.target = 2;
  ex.history = {4};
  Batch batch = builder.Build({&ex});
  ASSERT_EQ(batch.n_unified, 4u);
  EXPECT_EQ(batch.unified_ids[0], 1);           // user
  EXPECT_EQ(batch.unified_ids[1], 5);           // candidate (3 users + 2)
  EXPECT_EQ(batch.unified_ids[2], -1);          // padding stays -1
  EXPECT_EQ(batch.unified_ids[3], 8 + 4);       // dynamic shifted by 8
}

TEST(BatchBuilderTest, LabelsCarryRatings) {
  FeatureSpace space(2, 3);
  BatchBuilder builder(space, 2);
  SequenceExample a, b;
  a.user = 0; a.target = 1; a.rating = 4.5f;
  b.user = 1; b.target = 2; b.rating = 1.5f;
  Batch batch = builder.Build({&a, &b});
  EXPECT_FLOAT_EQ(batch.labels[0], 4.5f);
  EXPECT_FLOAT_EQ(batch.labels[1], 1.5f);
}

// ---------------------------------------------------------------------------
// Synthetic generator
// ---------------------------------------------------------------------------

TEST(SyntheticTest, AllPresetsGenerate) {
  for (const auto& name : SyntheticDatasetGenerator::PresetNames()) {
    auto cfg = SyntheticDatasetGenerator::Preset(name, 0.2);
    ASSERT_TRUE(cfg.ok()) << name;
    auto log = SyntheticDatasetGenerator(*cfg).Generate();
    ASSERT_TRUE(log.ok()) << name;
    EXPECT_GT(log->num_interactions(), 0u) << name;
  }
  EXPECT_FALSE(SyntheticDatasetGenerator::Preset("netflix").ok());
  EXPECT_FALSE(SyntheticDatasetGenerator::Preset("gowalla", -1.0).ok());
}

TEST(SyntheticTest, DeterministicInSeed) {
  auto cfg = SyntheticDatasetGenerator::Preset("beauty", 0.2).ValueOrDie();
  auto a = SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  auto b = SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  ASSERT_EQ(a.num_interactions(), b.num_interactions());
  for (size_t u = 0; u < a.num_users(); ++u) {
    const auto& sa = a.UserSequence(static_cast<int32_t>(u));
    const auto& sb = b.UserSequence(static_cast<int32_t>(u));
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].object, sb[i].object);
      EXPECT_EQ(sa[i].rating, sb[i].rating);
    }
  }
}

TEST(SyntheticTest, SequenceLengthsInConfiguredRange) {
  auto cfg = SyntheticDatasetGenerator::Preset("gowalla", 0.2).ValueOrDie();
  auto log = SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  for (size_t u = 0; u < log.num_users(); ++u) {
    const size_t len = log.UserSequence(static_cast<int32_t>(u)).size();
    EXPECT_GE(len, cfg.min_seq_len);
    EXPECT_LE(len, cfg.max_seq_len);
  }
}

TEST(SyntheticTest, RatingsOnlyForRatingPresets) {
  auto beauty = SyntheticDatasetGenerator(
                    SyntheticDatasetGenerator::Preset("beauty", 0.2).ValueOrDie())
                    .Generate()
                    .ValueOrDie();
  bool nonzero = false;
  for (size_t u = 0; u < beauty.num_users(); ++u) {
    for (const auto& it : beauty.UserSequence(static_cast<int32_t>(u))) {
      EXPECT_GE(it.rating, 1.0f);
      EXPECT_LE(it.rating, 5.0f);
      nonzero = true;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST(SyntheticTest, PlantedSequentialStructureIsOrderDependent) {
  // The generator plants ring transitions: the next object tends to come
  // from clusters c+1..c+K of a recently visited object (cluster = object %
  // C by construction). The statistic "fraction of consecutive steps whose
  // cluster advances by 1..K" must be clearly higher on the real sequences
  // than on order-destroyed (shuffled) copies — i.e. the signal lives in
  // the ORDER, which is exactly what sequence-aware models exploit.
  auto cfg = SyntheticDatasetGenerator::Preset("gowalla", 0.5).ValueOrDie();
  auto log = SyntheticDatasetGenerator(cfg).Generate().ValueOrDie();
  const size_t c_count = cfg.num_clusters;
  const size_t fan = cfg.successors_per_object;
  Rng shuffle_rng(4242);
  auto advance_rate = [&](bool shuffled) {
    size_t advance = 0, total = 0;
    for (size_t u = 0; u < log.num_users(); ++u) {
      std::vector<int32_t> objects;
      for (const auto& it : log.UserSequence(static_cast<int32_t>(u))) {
        objects.push_back(it.object);
      }
      if (shuffled) shuffle_rng.Shuffle(objects);
      for (size_t t = 1; t < objects.size(); ++t) {
        const size_t prev = objects[t - 1] % c_count;
        const size_t cur = objects[t] % c_count;
        const size_t delta = (cur + c_count - prev) % c_count;
        advance += (delta >= 1 && delta <= fan);
        ++total;
      }
    }
    return static_cast<double>(advance) / static_cast<double>(total);
  };
  const double real = advance_rate(false);
  const double control = advance_rate(true);
  EXPECT_GT(real, control + 0.05)
      << "real=" << real << " shuffled=" << control;
}

TEST(SyntheticTest, ScaleChangesUserCount) {
  auto small = SyntheticDatasetGenerator::Preset("trivago", 0.1).ValueOrDie();
  auto big = SyntheticDatasetGenerator::Preset("trivago", 1.0).ValueOrDie();
  EXPECT_LT(small.num_users, big.num_users);
}

}  // namespace
}  // namespace data
}  // namespace seqfm
