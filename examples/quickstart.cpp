// Quickstart: the smallest end-to-end SeqFM program.
//
//   1. generate a tiny temporal interaction log,
//   2. split it leave-one-out,
//   3. train SeqFM for next-object ranking with the BPR loss,
//   4. evaluate HR@10 / NDCG@10,
//   5. save and reload the model checkpoint.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

using namespace seqfm;

int main() {
  // 1. A small synthetic dataset with planted sequential structure.
  data::SyntheticConfig gen_config;
  gen_config.num_users = 80;
  gen_config.num_objects = 120;
  gen_config.num_clusters = 8;
  gen_config.min_seq_len = 12;
  gen_config.max_seq_len = 24;
  gen_config.seed = 7;
  auto log = data::SyntheticDatasetGenerator(gen_config).Generate();
  if (!log.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }

  // 2. Leave-one-out temporal split: last record = test, second-last =
  // validation, the rest = training prefixes.
  auto dataset = data::TemporalDataset::FromLog(*log);
  if (!dataset.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu users, %zu objects, %zu train / %zu test\n",
              log->num_users(), log->num_objects(), dataset->train().size(),
              dataset->test().size());

  // 3. Model + trainer. The BatchBuilder maps examples to the sparse
  // (static, dynamic) index layout of Eq. 20.
  data::FeatureSpace space(log->num_users(), log->num_objects());
  data::BatchBuilder builder(space, /*max_seq_len=*/16);

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 16;
  model_config.ffn_layers = 1;
  model_config.keep_prob = 0.9f;
  core::SeqFm model(space, model_config);
  std::printf("SeqFM with %zu trainable parameters\n", model.NumParameters());

  core::TrainConfig train_config;
  train_config.task = core::Task::kRanking;
  train_config.epochs = 15;
  train_config.batch_size = 128;
  train_config.learning_rate = 1e-2f;
  train_config.num_negatives = 2;
  core::Trainer trainer(&model, &builder, &*dataset, train_config);
  auto result = trainer.Train();
  std::printf("trained %zu epochs in %.1fs, final BPR loss %.4f\n",
              result.epochs.size(), result.total_seconds, result.final_loss);

  // 4. Leave-one-out ranking evaluation with 100 sampled negatives.
  eval::RankingEvaluator evaluator(&*dataset, &builder,
                                   /*num_negatives=*/100, /*seed=*/1);
  auto metrics = evaluator.Evaluate(&model, {5, 10});
  std::printf("HR@5=%.3f HR@10=%.3f NDCG@10=%.3f\n", metrics.hr[5],
              metrics.hr[10], metrics.ndcg[10]);

  // 5. Checkpoint round trip.
  const std::string path = "/tmp/seqfm_quickstart.ckpt";
  if (auto st = model.SaveParameters(path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  core::SeqFm reloaded(space, model_config);
  if (auto st = reloaded.LoadParameters(path); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto metrics2 = evaluator.Evaluate(&reloaded, {10});
  std::printf("reloaded checkpoint reproduces HR@10=%.3f (expected %.3f)\n",
              metrics2.hr[10], metrics.hr[10]);
  std::remove(path.c_str());
  return 0;
}
