// Rating prediction (the paper's regression scenario, Sec. IV-C): estimate a
// user's rating for a new item from their chronological rating history.
//
// Trains SeqFM with the squared-error head on a Beauty-like Amazon review
// log, reports MAE/RRSE against two trivial baselines (global mean and the
// plain FM), and shows per-user predictions. Also demonstrates loading an
// interaction log from CSV.
//
// Build & run:  ./build/examples/rating_prediction [--csv=path.csv]
#include <cstdio>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/flags.h"

using namespace seqfm;

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Either load a user-supplied "user,object,timestamp,rating" CSV or fall
  // back to the Beauty-like synthetic preset.
  data::InteractionLog log{0, 0};
  if (flags.Has("csv")) {
    auto loaded = data::LoadInteractionCsv(flags.GetString("csv", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "csv load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    log = std::move(loaded).ValueOrDie();
    std::printf("loaded CSV log\n");
  } else {
    auto config = data::SyntheticDatasetGenerator::Preset(
        "beauty", flags.GetDouble("scale", 0.4));
    log = data::SyntheticDatasetGenerator(*config).Generate().ValueOrDie();
  }
  auto dataset = data::TemporalDataset::FromLog(log).ValueOrDie();
  data::FeatureSpace space(log.num_users(), log.num_objects());
  data::BatchBuilder builder(space, 15);
  std::printf("rating log: %zu users, %zu items, %zu ratings\n",
              log.num_users(), log.num_objects(), log.num_interactions());

  // Global-mean baseline (RRSE of exactly 1.0 by definition on the train
  // mean; close to 1.0 on test).
  double mean_rating = 0.0;
  for (const auto& ex : dataset.train()) mean_rating += ex.rating;
  mean_rating /= static_cast<double>(dataset.train().size());

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 15;
  model_config.keep_prob = 0.9f;
  core::SeqFm model(space, model_config);

  core::TrainConfig train_config;
  train_config.task = core::Task::kRegression;
  train_config.epochs = static_cast<size_t>(flags.GetInt("epochs", 20));
  train_config.batch_size = 128;
  train_config.learning_rate = 1e-2f;
  core::Trainer trainer(&model, &builder, &dataset, train_config);
  trainer.Train();

  baselines::BaselineConfig fm_config;
  fm_config.embedding_dim = 16;
  fm_config.max_seq_len = 15;
  auto fm = baselines::CreateBaseline("FM", space, fm_config).ValueOrDie();
  core::Trainer fm_trainer(fm.get(), &builder, &dataset, train_config);
  fm_trainer.Train();

  eval::RegressionEvaluator evaluator(&dataset, &builder);
  auto m_seqfm = evaluator.Evaluate(&model);
  auto m_fm = evaluator.Evaluate(fm.get());

  double mean_mae = 0.0;
  for (const auto& ex : dataset.test()) {
    mean_mae += std::abs(ex.rating - mean_rating);
  }
  mean_mae /= static_cast<double>(dataset.test().size());

  std::printf("\n%-14s %8s %8s\n", "predictor", "MAE", "RRSE");
  std::printf("%-14s %8.3f %8s\n", "global mean", mean_mae, "~1.000");
  std::printf("%-14s %8.3f %8.3f\n", "FM", m_fm.mae, m_fm.rrse);
  std::printf("%-14s %8.3f %8.3f\n", "SeqFM", m_seqfm.mae, m_seqfm.rrse);

  std::printf("\nsample predictions:\n");
  const size_t show = std::min<size_t>(5, dataset.test().size());
  std::vector<const data::SequenceExample*> examples;
  for (size_t i = 0; i < show; ++i) examples.push_back(&dataset.test()[i]);
  auto preds = eval::ScoreExamples(&model, builder, examples);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  user %-4d item %-4d actual %.1f predicted %.2f\n",
                examples[i]->user, examples[i]->target, examples[i]->rating,
                preds[i]);
  }
  return 0;
}
