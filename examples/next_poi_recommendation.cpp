// Next-POI recommendation (the paper's ranking scenario, Sec. IV-A).
//
// Trains SeqFM on a Gowalla-like check-in log, then prints personalised
// top-5 POI recommendations for a few users together with their recent
// check-in history, and contrasts SeqFM's ranking quality against the plain
// FM trained on the same data.
//
// Build & run:  ./build/examples/next_poi_recommendation [--scale=0.3]
#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "serve/checkpoint.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/flags.h"
#include "util/stopwatch.h"

using namespace seqfm;

namespace {

void TrainRanking(core::Model* model, const data::BatchBuilder& builder,
                  const data::TemporalDataset& dataset, size_t epochs) {
  core::TrainConfig cfg;
  cfg.task = core::Task::kRanking;
  cfg.epochs = epochs;
  cfg.batch_size = 128;
  cfg.learning_rate = 1e-2f;
  cfg.num_negatives = 2;
  core::Trainer trainer(model, &builder, &dataset, cfg);
  auto result = trainer.Train();
  std::printf("  %-8s trained: %.1fs, final loss %.4f\n",
              model->name().c_str(), result.total_seconds, result.final_loss);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs", 15));

  auto config = data::SyntheticDatasetGenerator::Preset("gowalla", scale);
  auto log = data::SyntheticDatasetGenerator(*config).Generate();
  auto dataset = data::TemporalDataset::FromLog(*log);
  data::FeatureSpace space(log->num_users(), log->num_objects());
  data::BatchBuilder builder(space, 20);
  std::printf("Gowalla-like check-in log: %zu users, %zu POIs, %zu check-ins\n",
              log->num_users(), log->num_objects(), log->num_interactions());

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 20;
  model_config.keep_prob = 0.9f;
  core::SeqFm seqfm(space, model_config);
  TrainRanking(&seqfm, builder, *dataset, epochs);

  baselines::BaselineConfig fm_config;
  fm_config.embedding_dim = 16;
  fm_config.max_seq_len = 20;
  auto fm = baselines::CreateBaseline("FM", space, fm_config).ValueOrDie();
  TrainRanking(fm.get(), builder, *dataset, epochs);

  // Head-to-head leave-one-out evaluation on identical candidate sets.
  eval::RankingEvaluator evaluator(&*dataset, &builder, 200, 11);
  auto m_seqfm = evaluator.Evaluate(&seqfm, {5, 10});
  auto m_fm = evaluator.Evaluate(fm.get(), {5, 10});
  std::printf("\nleave-one-out ranking:  SeqFM HR@10=%.3f NDCG@10=%.3f   "
              "FM HR@10=%.3f NDCG@10=%.3f\n",
              m_seqfm.hr[10], m_seqfm.ndcg[10], m_fm.hr[10], m_fm.ndcg[10]);

  // Production-style serving: persist the trained model, restore it into a
  // fresh instance, and answer top-5 requests through serve::Predictor —
  // tape-free forwards, with SeqFM's factored catalog program active.
  const std::string ckpt = "/tmp/next_poi_seqfm.ckpt";
  if (auto st = serve::Checkpoint::Save(seqfm, ckpt); !st.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  core::SeqFm served(space, model_config);
  serve::PredictorOptions serve_opts;
  serve_opts.context_cache_bytes = 16 << 20;  // memoize (user, history) work
  auto predictor =
      serve::Predictor::FromCheckpoint(&served, &builder, ckpt, serve_opts);
  if (!predictor.ok()) {
    std::fprintf(stderr, "%s\n", predictor.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncheckpoint round trip: %s (%zu parameters), fast path %s\n",
              ckpt.c_str(), served.NumParameters(),
              (*predictor)->fast_path_active() ? "active" : "inactive");

  // Requests go through serve::BatchServer: concurrent submissions fuse into
  // multi-user scoring waves on the thread pool, and each user's
  // (user, history) context is memoized by the Predictor's ContextCache —
  // the repeated request for the first user below is served from the cache.
  // Each request's catalog is partitioned into 4 shards with per-shard
  // bounded top-K heaps and a deterministic cross-shard merge: the exact
  // rankings an unsharded server would produce, at O(shards * k) memory per
  // request instead of one score per candidate.
  const size_t num_shards = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("shards", 4)));
  std::printf("top-5 next-POI recommendations (served from checkpoint, "
              "%zu catalog shards):\n", num_shards);
  Stopwatch serve_timer;
  size_t scored = 0;
  const size_t show_users = std::min<size_t>(3, dataset->test().size());
  serve::BatchServerOptions server_opts;
  server_opts.num_shards = num_shards;
  serve::BatchServer server(predictor->get(), server_opts);
  auto candidates_for = [&](const data::SequenceExample& ex) {
    std::vector<int32_t> candidates;
    for (size_t o = 0; o < log->num_objects(); ++o) {
      if (!dataset->Interacted(ex.user, static_cast<int32_t>(o))) {
        candidates.push_back(static_cast<int32_t>(o));
      }
    }
    candidates.push_back(ex.target);  // the ground truth next POI
    return candidates;
  };
  std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
  for (size_t i = 0; i < show_users; ++i) {
    const auto& ex = dataset->test()[i];
    auto candidates = candidates_for(ex);
    scored += candidates.size();
    futures.push_back(server.Submit(ex, std::move(candidates), 5));
  }
  for (size_t i = 0; i < show_users; ++i) {
    const auto& ex = dataset->test()[i];
    const auto top = futures[i].get();
    std::printf("  user %d, recent POIs:", ex.user);
    const size_t tail = std::min<size_t>(5, ex.history.size());
    for (size_t j = ex.history.size() - tail; j < ex.history.size(); ++j) {
      std::printf(" %d", ex.history[j]);
    }
    std::printf("  | actual next: %d\n    recommended:", ex.target);
    for (const auto& item : top) {
      std::printf(" %d(%.2f)%s", item.item, item.score,
                  item.item == ex.target ? "*" : "");
    }
    std::printf("   (* = ground truth)\n");
  }
  // A second request for the first user arrives later (a fresh wave): its
  // (user, history) context is served from the ContextCache, not recomputed.
  {
    const auto& ex = dataset->test()[0];
    auto candidates = candidates_for(ex);
    scored += candidates.size();
    (void)server.Submit(ex, std::move(candidates), 5).get();
  }
  const auto cache = (*predictor)->context_cache()->stats();
  const auto waves = server.stats();
  std::printf("served %zu candidate scores in %.1f ms | %llu waves, "
              "context cache: %llu hits / %llu misses\n",
              scored, serve_timer.ElapsedSeconds() * 1e3,
              static_cast<unsigned long long>(waves.waves),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  // The scratch arenas behind the tape-free forwards: after the first
  // request at a shape, heap_refills stops moving — steady-state serving
  // performs zero tensor heap allocations.
  std::printf("scratch arenas: %llu bump allocations over %llu heap refills, "
              "%.1f KiB reserved, %.1f KiB request high-water\n",
              static_cast<unsigned long long>(waves.scratch.allocations),
              static_cast<unsigned long long>(waves.scratch.heap_refills),
              static_cast<double>(waves.scratch.bytes_reserved) / 1024.0,
              static_cast<double>(waves.scratch.high_water) / 1024.0);

  // The same sharded machinery works without a server: ShardedPredictor
  // ranks the whole POI catalog through per-shard top-K heaps and is
  // bit-identical to Predictor::TopKAll for any shard count.
  serve::ShardedPredictor sharded(predictor->get(), {num_shards, 0});
  const auto& first = dataset->test()[0];
  const auto direct = sharded.TopKAll(first, 5);
  std::printf("whole-catalog top-5 for user %d via ShardedPredictor:",
              first.user);
  for (const auto& item : direct) {
    std::printf(" %d(%.2f)", item.item, item.score);
  }
  std::printf("\n");
  return 0;
}
