// Network serving over TCP (the serve::RpcServer tier).
//
// Trains a small SeqFM on a Gowalla-like check-in log, stands up the full
// serving stack — Predictor (compiled program + context cache) behind a
// BatchServer wave dispatcher behind an epoll RpcServer on a loopback
// port — and then queries it like a remote client would: length-prefixed
// binary frames over a real socket, responses matched by request id.
// Finally it overloads a deliberately tiny admission queue to show explicit
// load shedding (OVERLOADED responses) instead of unbounded queueing.
//
// Build & run:  ./build/examples/rpc_serving [--scale=0.3] [--port=0]
#include <cstdio>
#include <string>
#include <vector>

#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "util/flags.h"

using namespace seqfm;

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs", 5));
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));

  auto config = data::SyntheticDatasetGenerator::Preset("gowalla", scale);
  auto log = data::SyntheticDatasetGenerator(*config).Generate();
  auto dataset = data::TemporalDataset::FromLog(*log);
  data::FeatureSpace space(log->num_users(), log->num_objects());
  data::BatchBuilder builder(space, 20);
  std::printf("check-in log: %zu users, %zu POIs, %zu interactions\n",
              log->num_users(), log->num_objects(), log->num_interactions());

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 20;
  model_config.keep_prob = 0.9f;
  core::SeqFm model(space, model_config);
  {
    core::TrainConfig cfg;
    cfg.task = core::Task::kRanking;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.learning_rate = 1e-2f;
    cfg.num_negatives = 2;
    core::Trainer trainer(&model, &builder, &*dataset, cfg);
    auto result = trainer.Train();
    std::printf("trained SeqFM: %.1fs, final loss %.4f\n",
                result.total_seconds, result.final_loss);
  }

  // The serving stack, bottom-up. The RpcServer owns no scoring: the epoll
  // loop only moves bytes, the BatchServer's dispatcher fuses concurrent
  // requests into multi-user waves on the thread pool.
  serve::PredictorOptions pred_opts;
  pred_opts.context_cache_bytes = 16 << 20;
  serve::Predictor predictor(&model, &builder, pred_opts);
  serve::BatchServerOptions batch_opts;
  batch_opts.max_queue_requests = 1024;  // bounded admission from day one
  serve::BatchServer batch(&predictor, batch_opts);
  serve::RpcServerOptions rpc_opts;
  rpc_opts.port = port;  // 0 = ephemeral: read it back from rpc.port()
  serve::RpcServer rpc(&batch, rpc_opts);
  if (auto st = rpc.Start(); !st.ok()) {
    std::fprintf(stderr, "rpc server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nrpc server listening on 127.0.0.1:%u\n", rpc.port());

  // A remote client: real TCP connection, binary frames, ids echo back.
  serve::RpcClient client;
  if (auto st = client.Connect("127.0.0.1", rpc.port()); !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<int32_t> catalog(log->num_objects());
  for (size_t o = 0; o < catalog.size(); ++o) {
    catalog[o] = static_cast<int32_t>(o);
  }
  const size_t show_users = std::min<size_t>(3, dataset->test().size());
  for (size_t i = 0; i < show_users; ++i) {
    const auto& ex = dataset->test()[i];
    serve::RpcRequest req;
    req.id = i + 1;
    req.user = ex.user;
    req.k = 5;
    req.history = ex.history;
    req.slate = catalog;
    serve::RpcResponse resp;
    if (auto st = client.Call(req, &resp); !st.ok()) {
      std::fprintf(stderr, "call: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("  user %d -> %s, top-5:", ex.user,
                serve::RpcStatusToString(resp.status));
    for (const auto& item : resp.items) {
      std::printf(" %d(%.2f)%s", item.item, item.score,
                  item.item == ex.target ? "*" : "");
    }
    std::printf("   (* = actual next POI)\n");
  }

  // Overload demonstration: a depth-1 queue with single-request waves sheds
  // a pipelined burst — clients get an immediate OVERLOADED answer they can
  // back off on, and server memory stays bounded.
  serve::BatchServerOptions tiny_opts;
  tiny_opts.max_wave_requests = 1;
  tiny_opts.max_queue_requests = 1;
  serve::BatchServer tiny_batch(&predictor, tiny_opts);
  serve::RpcServer tiny_rpc(&tiny_batch);
  if (auto st = tiny_rpc.Start(); !st.ok()) {
    std::fprintf(stderr, "rpc server: %s\n", st.ToString().c_str());
    return 1;
  }
  serve::RpcClient burst_client;
  if (auto st = burst_client.Connect("127.0.0.1", tiny_rpc.port()); !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  const size_t burst = 32;
  for (size_t i = 0; i < burst; ++i) {
    serve::RpcRequest req;
    req.id = i;
    req.user = dataset->test()[0].user;
    req.k = 3;
    req.history = dataset->test()[0].history;
    req.slate = catalog;
    if (auto st = burst_client.Send(req); !st.ok()) {
      std::fprintf(stderr, "send: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  size_t ok = 0, shed = 0;
  for (size_t i = 0; i < burst; ++i) {
    serve::RpcResponse resp;
    if (auto st = burst_client.ReadResponse(&resp); !st.ok()) {
      std::fprintf(stderr, "read: %s\n", st.ToString().c_str());
      return 1;
    }
    (resp.status == serve::RpcStatus::kOk ? ok : shed) += 1;
  }
  std::printf("\nburst of %zu against a depth-1 queue: %zu served, %zu shed "
              "(every request answered — served + shed == submitted)\n",
              burst, ok, shed);

  const auto stats = rpc.stats();
  std::printf("main server stats: %llu frames, %llu ok, %llu shed, "
              "%llu connections\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.requests_shed),
              static_cast<unsigned long long>(stats.connections_accepted));
  // Graceful drain: admitted requests finish, buffered responses flush.
  tiny_rpc.Shutdown();
  rpc.Shutdown();
  return 0;
}
