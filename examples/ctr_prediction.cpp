// Click-through-rate prediction (the paper's classification scenario,
// Sec. IV-B): given a user's chronological click history, predict whether
// they will click a candidate link.
//
// Trains SeqFM with the sigmoid + log-loss head on a Trivago-like click log,
// reports AUC/RMSE, and prints calibrated click probabilities for a few
// (user, link) pairs.
//
// Build & run:  ./build/examples/ctr_prediction [--scale=0.3]
#include <cstdio>

#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/ops.h"
#include "util/flags.h"

using namespace seqfm;

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double scale = flags.GetDouble("scale", 0.3);

  auto config = data::SyntheticDatasetGenerator::Preset("trivago", scale);
  auto log = data::SyntheticDatasetGenerator(*config).Generate();
  auto dataset = data::TemporalDataset::FromLog(*log);
  data::FeatureSpace space(log->num_users(), log->num_objects());
  data::BatchBuilder builder(space, 20);
  std::printf("Trivago-like click log: %zu users, %zu links, %zu clicks\n",
              log->num_users(), log->num_objects(), log->num_interactions());

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 20;
  model_config.keep_prob = 0.9f;
  core::SeqFm model(space, model_config);

  core::TrainConfig train_config;
  train_config.task = core::Task::kClassification;
  train_config.epochs = static_cast<size_t>(flags.GetInt("epochs", 15));
  train_config.batch_size = 128;
  train_config.learning_rate = 1e-2f;
  train_config.num_negatives = 2;  // negatives drawn per positive (Sec. IV-D)
  core::Trainer trainer(&model, &builder, &*dataset, train_config);
  auto result = trainer.Train();
  std::printf("trained in %.1fs, final log loss %.4f\n", result.total_seconds,
              result.final_loss);

  eval::ClassificationEvaluator evaluator(&*dataset, &builder, /*seed=*/3);
  auto metrics = evaluator.Evaluate(&model);
  std::printf("test AUC=%.3f RMSE=%.3f LogLoss=%.3f\n", metrics.auc,
              metrics.rmse, metrics.logloss);

  // Calibrated click probabilities: the actually-clicked link vs a random
  // never-clicked one, for a few users (Eq. 23 applies sigmoid to the raw
  // score).
  std::printf("\npredicted click probabilities (actual vs never-clicked):\n");
  Rng rng(99);
  data::NegativeSampler sampler(&*dataset);
  const size_t show = std::min<size_t>(5, dataset->test().size());
  for (size_t i = 0; i < show; ++i) {
    const auto& ex = dataset->test()[i];
    const int32_t negative = sampler.Sample(ex.user, &rng);
    std::vector<const data::SequenceExample*> pair = {&ex, &ex};
    std::vector<int32_t> targets = {ex.target, negative};
    auto logits = eval::ScoreExamples(&model, builder, pair, &targets);
    std::printf("  user %-4d clicked link %-4d p=%.3f   vs link %-4d p=%.3f\n",
                ex.user, ex.target, tensor::StableSigmoid(logits[0]), negative,
                tensor::StableSigmoid(logits[1]));
  }
  return 0;
}
