// Multi-replica distributed serving (the serve::Coordinator tier).
//
// Trains a small SeqFM, saves a checkpoint, and stands up a three-replica
// fleet IN THIS PROCESS — each replica is the full serving stack
// (Predictor -> BatchServer -> RpcServer in replica mode) owning one third
// of the catalog, exactly what tools/replica_main.cc runs as a separate
// process per shard. A serve::Coordinator connects to all three over
// loopback TCP, validates that their parameter fingerprints agree, and
// serves requests by fanning out and k-way-merging the per-shard top-K —
// bit-identical to single-process serving, which the demo verifies live.
// Finally one replica is shut down to show graceful degradation: the
// coordinator answers PARTIAL with the surviving shards' merge instead of
// failing or hanging.
//
// Build & run:  ./build/examples/distributed_serving [--scale=0.3]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/checkpoint.h"
#include "serve/coordinator.h"
#include "serve/predictor.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "util/flags.h"

using namespace seqfm;

int main(int argc, char** argv) {
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double scale = flags.GetDouble("scale", 0.3);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs", 3));

  auto config = data::SyntheticDatasetGenerator::Preset("gowalla", scale);
  auto log = data::SyntheticDatasetGenerator(*config).Generate();
  auto dataset = data::TemporalDataset::FromLog(*log);
  data::FeatureSpace space(log->num_users(), log->num_objects());
  data::BatchBuilder builder(space, 20);
  std::printf("check-in log: %zu users, %zu POIs, %zu interactions\n",
              log->num_users(), log->num_objects(), log->num_interactions());

  core::SeqFmConfig model_config;
  model_config.embedding_dim = 16;
  model_config.max_seq_len = 20;
  core::SeqFm model(space, model_config);
  {
    core::TrainConfig cfg;
    cfg.task = core::Task::kRanking;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.learning_rate = 1e-2f;
    cfg.num_negatives = 2;
    core::Trainer trainer(&model, &builder, &*dataset, cfg);
    auto result = trainer.Train();
    std::printf("trained SeqFM: %.1fs, final loss %.4f\n",
                result.total_seconds, result.final_loss);
  }

  // Every replica of a real fleet loads the same checkpoint file and
  // derives the same parameter fingerprint — the model version the
  // coordinator refuses to merge across.
  const uint64_t version = serve::ParameterVersion(model);
  std::printf("parameter fingerprint (model version): %llu\n\n",
              static_cast<unsigned long long>(version));

  // The fleet: three replica-mode servers, each owning one contiguous
  // third of the catalog (ShardedCatalog::Bounds — replicas configured
  // alike agree on every boundary without talking to each other).
  constexpr uint32_t kShards = 3;
  serve::PredictorOptions pred_opts;
  pred_opts.context_cache_bytes = 16 << 20;
  serve::Predictor predictor(&model, &builder, pred_opts);
  std::vector<std::unique_ptr<serve::BatchServer>> batches;
  std::vector<std::unique_ptr<serve::RpcServer>> replicas;
  for (uint32_t s = 0; s < kShards; ++s) {
    batches.push_back(std::make_unique<serve::BatchServer>(&predictor));
    serve::RpcServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.catalog_size = log->num_objects();
    opts.shard_index = s;
    opts.num_shards = kShards;
    opts.model_version = version;
    replicas.push_back(
        std::make_unique<serve::RpcServer>(batches.back().get(), opts));
    if (auto st = replicas.back()->Start(); !st.ok()) {
      std::fprintf(stderr, "replica %u: %s\n", s, st.ToString().c_str());
      return 1;
    }
    std::printf("replica %u/%u listening on 127.0.0.1:%u\n", s, kShards,
                replicas.back()->port());
  }

  // The coordinator handshakes with every replica (protocol version,
  // capabilities, model version, owned slice) and validates the fleet:
  // all fingerprints equal, every shard covered, every slice canonical.
  serve::Coordinator coord;
  for (auto& replica : replicas) {
    if (auto st = coord.AddReplica("127.0.0.1", replica->port()); !st.ok()) {
      std::fprintf(stderr, "add replica: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = coord.Ready(); !st.ok()) {
    std::fprintf(stderr, "fleet: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nfleet ready: %u shards over %llu items, model %llu\n\n",
              coord.num_shards(),
              static_cast<unsigned long long>(coord.catalog_size()),
              static_cast<unsigned long long>(coord.model_version()));

  // Serve a few users through the fleet and verify, live, that the merged
  // ranking is bit-identical to single-process serving.
  const auto& test = dataset->test();
  const size_t show = test.size() < 3 ? test.size() : 3;
  bool all_match = true;
  for (size_t i = 0; i < show; ++i) {
    const auto& ex = test[i];
    serve::CoordinatorResult result;
    if (auto st = coord.TopKAll(ex, 5, &result); !st.ok()) {
      std::fprintf(stderr, "coordinator: %s\n", st.ToString().c_str());
      return 1;
    }
    const std::vector<serve::ScoredItem> local = predictor.TopKAll(ex, 5);
    bool match = local.size() == result.items.size();
    for (size_t r = 0; match && r < local.size(); ++r) {
      match = local[r].item == result.items[r].item &&
              std::memcmp(&local[r].score, &result.items[r].score,
                          sizeof(float)) == 0;
    }
    all_match = all_match && match;
    std::printf("  user %d -> %s (%u/%u shards), top-5:", ex.user,
                serve::RpcStatusToString(result.status),
                result.shards_merged, result.shards_total);
    for (const auto& item : result.items) {
      std::printf(" %d(%.2f)%s", item.item, item.score,
                  item.item == ex.target ? "*" : "");
    }
    std::printf("  [%s single-process]\n",
                match ? "bit-identical to" : "DIVERGES from");
  }
  if (!all_match) {
    std::fprintf(stderr, "FAIL: distributed ranking diverged\n");
    return 1;
  }

  // Degradation: take shard 1 down and serve again. The coordinator's
  // per-replica timeouts bound the fan-out, so the dead shard costs an
  // explicit PARTIAL answer — never a hang.
  std::printf("\nshutting down replica 1 (shard 1 goes dark)...\n");
  replicas[1]->Shutdown();
  serve::CoordinatorResult degraded;
  if (auto st = coord.TopKAll(test[0], 5, &degraded); !st.ok()) {
    std::fprintf(stderr, "coordinator: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  user %d -> %s (%u/%u shards), top-5 of the survivors:",
              test[0].user, serve::RpcStatusToString(degraded.status),
              degraded.shards_merged, degraded.shards_total);
  for (const auto& item : degraded.items) {
    std::printf(" %d(%.2f)", item.item, item.score);
  }
  std::printf("\n\ndistributed serving demo complete.\n");

  for (auto& replica : replicas) replica->Shutdown();
  return 0;
}
